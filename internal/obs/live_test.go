package obs

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

type countSink struct {
	n    int
	fail error // returned from Observe once n reaches failAt
	at   int
}

func (c *countSink) Observe(e Event) error {
	c.n++
	if c.fail != nil && c.n >= c.at {
		return c.fail
	}
	return nil
}

func TestTeeFanOut(t *testing.T) {
	d := sampleData(t, 1)
	a, b := &countSink{}, &countSink{}
	tee := Tee(a, b)
	if err := d.WriteTo(tee); err != nil {
		t.Fatal(err)
	}
	if a.n == 0 || a.n != b.n {
		t.Fatalf("sinks saw %d and %d events, want equal and > 0", a.n, b.n)
	}
	if tee.Err() != nil {
		t.Fatalf("healthy tee reports error: %v", tee.Err())
	}
}

func TestTeeDropsFailedSink(t *testing.T) {
	d := sampleData(t, 1)
	boom := errors.New("boom")
	bad := &countSink{fail: boom, at: 3}
	good := &countSink{}
	tee := Tee(bad, good)
	if err := d.WriteTo(tee); err != nil {
		t.Fatalf("tee with one healthy sink should not fail the producer: %v", err)
	}
	if bad.n != 3 {
		t.Errorf("failed sink saw %d events after erroring, want 3", bad.n)
	}
	if good.n <= 3 {
		t.Errorf("healthy sink stalled at %d events", good.n)
	}
	if !errors.Is(tee.Err(), boom) {
		t.Errorf("tee.Err() = %v, want the sink's error", tee.Err())
	}

	// Every sink failed: the producer must be stopped.
	allBad := Tee(&countSink{fail: boom, at: 1})
	if err := d.WriteTo(allBad); !errors.Is(err, boom) {
		t.Errorf("tee with no healthy sinks returned %v, want %v", err, boom)
	}
}

// TestStreamDecodeMatchesDecode pins the refactor: streaming the frames
// through a collecting sink yields the same dataset Decode builds, and
// a sink error aborts the decode.
func TestStreamDecodeMatchesDecode(t *testing.T) {
	d := sampleData(t, 2)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}

	streamed := &Data{}
	if err := StreamDecode(bytes.NewReader(buf.Bytes()), streamed); err != nil {
		t.Fatal(err)
	}
	direct, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	requireEqualData(t, direct, streamed)

	boom := errors.New("sink says no")
	err = StreamDecode(bytes.NewReader(buf.Bytes()), SinkFunc(func(Event) error { return boom }))
	if !errors.Is(err, boom) {
		t.Errorf("StreamDecode with failing sink returned %v, want %v", err, boom)
	}
}

// TestFollowTailsGrowingFile writes a dataset in two installments and
// asserts Follow delivers the early events before the file is complete,
// then finishes cleanly on the end frame.
func TestFollowTailsGrowingFile(t *testing.T) {
	d := sampleData(t, 3)
	var full bytes.Buffer
	if err := Write(&full, d); err != nil {
		t.Fatal(err)
	}
	b := full.Bytes()
	path := filepath.Join(t.TempDir(), "grow.obs")
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	half := make(chan int, 1) // events seen while the file was half-written
	total := 0
	done := make(chan error, 1)
	go func() {
		done <- Follow(context.Background(), path, time.Millisecond, SinkFunc(func(Event) error {
			total++
			return nil
		}))
	}()

	// Wait until the consumer visibly stalls at the half-file boundary,
	// then append the rest.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("follower never consumed the first half")
		case <-time.After(10 * time.Millisecond):
		}
		if total > 0 {
			half <- total
			break
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b[len(b)/2:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := <-done; err != nil {
		t.Fatalf("follow: %v", err)
	}
	if got := <-half; got >= total {
		t.Errorf("no events delivered after the append (%d then %d)", got, total)
	}

	// The streamed events reproduce the dataset.
	replay := &Data{}
	if err := Follow(context.Background(), path, time.Millisecond, replay); err != nil {
		t.Fatal(err)
	}
	requireEqualData(t, d, replay)
}

func TestFollowCancel(t *testing.T) {
	// Cancelling while waiting for a file that never appears.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Follow(ctx, filepath.Join(t.TempDir(), "never.obs"), time.Millisecond, &Data{})
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Errorf("follow on missing file returned %v, want context.Canceled", err)
	}

	// Cancelling while tailing a file that never completes.
	d := sampleData(t, 1)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "stuck.obs")
	if err := os.WriteFile(path, buf.Bytes()[:buf.Len()-1], 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel = context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := Follow(ctx, path, time.Millisecond, &Data{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("follow on incomplete file returned %v, want deadline exceeded", err)
	}
}

func TestTruncateLive(t *testing.T) {
	d := sampleData(t, 4) // Days 28, DailyStart 7, DailyLen 14, scans on 9/12/15
	tr := d.TruncateLive(5)

	if got := len(tr.Daily); got != 5 {
		t.Errorf("daily = %d, want 5", got)
	}
	if tr.Meta.Run.DailyLen != 5 {
		t.Errorf("meta dailyLen = %d, want 5", tr.Meta.Run.DailyLen)
	}
	// Last applied absolute day is 7+5-1 = 11: week 0 (closes day 6)
	// has closed, week 1 (closes day 13) has not.
	if got := len(tr.Weekly); got != 1 {
		t.Errorf("weekly = %d, want 1", got)
	}
	// Scans on days 9 and 12? Day 12 > 11, so only the day-9 scan.
	if got := len(tr.ICMPScans); got != 1 || len(tr.Meta.Run.ICMPScanDays) != 1 {
		t.Errorf("scans = %d (meta %d), want 1", got, len(tr.Meta.Run.ICMPScanDays))
	}
	// End-of-stream aggregates have not arrived.
	if len(tr.Traffic) != 0 || len(tr.UA) != 0 || tr.ServerSet.Len() != 0 || tr.RouterSet.Len() != 0 {
		t.Error("stream-prefix state carries end-of-stream aggregates")
	}
	// Ground truth arrives up front and is retained.
	if tr.Routing == nil || len(tr.Restructures) == 0 {
		t.Error("up-front ground truth dropped")
	}
	// The input is untouched and out-of-range cuts are identity.
	if len(d.Daily) != 14 || len(d.Weekly) != 4 {
		t.Error("TruncateLive mutated its input")
	}
	if d.TruncateLive(0) != d || d.TruncateLive(15) != d {
		t.Error("out-of-range cut should return the input")
	}
}
