package obs

import (
	"ipscope/internal/ipv4"
	"ipscope/internal/xrand"
)

// Replay scenarios: transforms over a stored dataset that answer
// "what would the analyses have seen under a weaker vantage?" without
// re-simulation. Both transforms return a new Data sharing unmodified
// structures with the input; the input is not mutated.

// TruncateWindow returns a copy of d whose daily window keeps only its
// first n days, modelling a shorter collection campaign. Per-address
// DaysActive counts are recomputed from the kept daily sets; per-address
// hit totals are scaled by the kept fraction of active days (the
// per-day split is not stored, so a uniform daily rate is assumed).
// ICMP snapshots taken after the truncated window are dropped, and so
// are the UA statistics: they were sampled on the trailing UADays of
// the original window, which any truncation cuts into, and sketches
// cannot be split per day — a shorter campaign would have sampled its
// own trailing days. Weekly (year-level) series are unaffected.
func (d *Data) TruncateWindow(n int) *Data {
	if n <= 0 || n >= len(d.Daily) {
		return d
	}
	out := *d
	out.Meta.Run.DailyLen = n
	out.Meta.Run.UADays = 0
	out.UA = map[ipv4.Block]*UAStat{}
	out.Daily = d.Daily[:n]
	out.DailyTotalHits = d.DailyTotalHits[:n]

	lastDay := d.Meta.Run.DailyStart + n
	out.Meta.Run.ICMPScanDays = nil
	out.ICMPScans = nil
	for i, day := range d.Meta.Run.ICMPScanDays {
		if day < lastDay {
			out.Meta.Run.ICMPScanDays = append(out.Meta.Run.ICMPScanDays, day)
			out.ICMPScans = append(out.ICMPScans, d.ICMPScans[i])
		}
	}

	out.Traffic = make(map[ipv4.Block]*BlockTraffic, len(d.Traffic))
	for _, blk := range d.TrafficBlocks() {
		bt := d.Traffic[blk]
		nt := &BlockTraffic{}
		keep := false
		for h := 0; h < 256; h++ {
			if bt.DaysActive[h] == 0 {
				continue
			}
			days := uint16(0)
			a := blk.Addr(byte(h))
			for _, s := range out.Daily {
				if s.Contains(a) {
					days++
				}
			}
			if days == 0 {
				continue
			}
			nt.DaysActive[h] = days
			nt.Hits[h] = bt.Hits[h] * float64(days) / float64(bt.DaysActive[h])
			keep = true
		}
		if keep {
			out.Traffic[blk] = nt
		}
	}
	return &out
}

// TruncateLive returns the dataset a live consumer has accumulated at
// the moment day n of the daily window (1-based: days 0..n-1 applied)
// closed — the stream-prefix state, as opposed to TruncateWindow's
// counterfactual shorter campaign. Events arrive in emission order
// (see sim.RunTo), so at that moment the consumer holds: the first n
// daily sets, every weekly snapshot whose closing day has passed, every
// ICMP campaign snapshot taken on or before the last applied day, and
// the up-front ground truth (routing, restructures) — but none of the
// end-of-stream aggregates (per-block traffic/UA stats, scan surfaces),
// which are only emitted after the simulated year completes. This is
// the reference the incremental indexing layer (internal/query's
// Applier) is held equivalent to.
func (d *Data) TruncateLive(n int) *Data {
	if n <= 0 || n > len(d.Daily) {
		return d
	}
	run := d.Meta.Run
	lastDay := run.DailyStart + n - 1
	out := &Data{Meta: d.Meta}
	out.Meta.Run.DailyLen = n
	out.Daily = d.Daily[:n]
	out.DailyTotalHits = d.DailyTotalHits[:n]

	weeks := weeksClosedBy(run, lastDay)
	out.Weekly = d.Weekly[:weeks]
	out.WeeklyTopShare = d.WeeklyTopShare[:weeks]

	out.Meta.Run.ICMPScanDays = nil
	for i, day := range run.ICMPScanDays {
		if day <= lastDay {
			out.Meta.Run.ICMPScanDays = append(out.Meta.Run.ICMPScanDays, day)
			out.ICMPScans = append(out.ICMPScans, d.ICMPScans[i])
		}
	}

	out.Traffic = map[ipv4.Block]*BlockTraffic{}
	out.UA = map[ipv4.Block]*UAStat{}
	out.ServerSet = ipv4.NewSet()
	out.RouterSet = ipv4.NewSet()
	out.Routing = d.Routing
	out.Restructures = d.Restructures
	return out
}

// weeksClosedBy counts the weekly snapshots whose closing day is <= day.
// Non-final weeks close on their last calendar day; the final (possibly
// clamped) week closes on the run's last day, matching the engine's
// emission schedule.
func weeksClosedBy(run RunConfig, day int) int {
	nw := run.NumWeeks()
	k := 0
	for wk := 0; wk < nw; wk++ {
		close := (wk+1)*7 - 1
		if wk == nw-1 {
			close = run.Days - 1
		}
		if close <= day {
			k++
		}
	}
	return k
}

// SubsampleVantage returns a copy of d as observed by a vantage that
// monitors only a deterministic pseudo-random fraction frac of
// addresses (a smaller CDN footprint, fewer monitored clients). All
// per-address structures are filtered; daily/weekly total-traffic
// series are scaled by the kept share of aggregate traffic. UA sketches
// are kept for blocks that retain addresses (header sampling is
// per-request, not per-address) and dropped otherwise.
func (d *Data) SubsampleVantage(frac float64, seed uint64) *Data {
	if frac >= 1 {
		return d
	}
	if frac < 0 {
		frac = 0
	}
	keep := func(a ipv4.Addr) bool {
		// Threshold on a splitmix of (addr, seed): deterministic and
		// independent of iteration order.
		h := xrand.Splitmix64(uint64(a) ^ xrand.Splitmix64(seed))
		return float64(h>>11)/(1<<53) < frac
	}
	filter := func(s *ipv4.Set) *ipv4.Set {
		out := ipv4.NewSet()
		if s == nil {
			return out
		}
		s.ForEach(func(a ipv4.Addr) {
			if keep(a) {
				out.Add(a)
			}
		})
		return out
	}
	filterAll := func(ss []*ipv4.Set) []*ipv4.Set {
		out := make([]*ipv4.Set, len(ss))
		for i, s := range ss {
			out[i] = filter(s)
		}
		return out
	}

	out := *d
	out.Daily = filterAll(d.Daily)
	out.Weekly = filterAll(d.Weekly)
	out.ICMPScans = filterAll(d.ICMPScans)
	out.ServerSet = filter(d.ServerSet)
	out.RouterSet = filter(d.RouterSet)

	var totalHits, keptHits float64
	out.Traffic = make(map[ipv4.Block]*BlockTraffic, len(d.Traffic))
	for _, blk := range d.TrafficBlocks() {
		bt := d.Traffic[blk]
		nt := &BlockTraffic{}
		kept := false
		for h := 0; h < 256; h++ {
			if bt.DaysActive[h] == 0 {
				continue
			}
			totalHits += bt.Hits[h]
			if !keep(blk.Addr(byte(h))) {
				continue
			}
			nt.DaysActive[h] = bt.DaysActive[h]
			nt.Hits[h] = bt.Hits[h]
			keptHits += bt.Hits[h]
			kept = true
		}
		if kept {
			out.Traffic[blk] = nt
		}
	}

	out.UA = make(map[ipv4.Block]*UAStat, len(d.UA))
	for blk, st := range d.UA {
		// Keep a block's sketch only while the vantage still observes
		// traffic there; when the input carries no traffic aggregates
		// at all, there is nothing to gate on and sketches stay.
		if len(d.Traffic) == 0 || out.Traffic[blk] != nil {
			out.UA[blk] = st
		}
	}

	scale := 0.0
	if totalHits > 0 {
		scale = keptHits / totalHits
	}
	out.DailyTotalHits = scaled(d.DailyTotalHits, scale)
	return &out
}

func scaled(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = v * f
	}
	return out
}
