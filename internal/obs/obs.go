// Package obs is the observation layer between simulation (or, in
// production, the CDN edge fleet) and analysis: typed observation
// events, a Sink interface the generation side emits into, a versioned
// binary dataset codec (Writer/Reader), and a Source interface the
// analysis side consumes.
//
// The paper's deployment is a pipeline — edge servers emit aggregates,
// a collection tier merges and stores them, and analyses run later over
// the stored year of observations. This package is that seam: a
// simulation streamed through a Writer produces a dataset file that can
// be shipped, stored, replayed under scenarios (see scenario.go) and
// analyzed many times without re-simulation.
package obs

import (
	"errors"
	"sort"

	"ipscope/internal/bgp"
	"ipscope/internal/core"
	"ipscope/internal/ipv4"
	"ipscope/internal/synthnet"
	"ipscope/internal/useragent"
)

// RunConfig controls a simulation run. It lives here (aliased as
// sim.Config) so a stored dataset is self-describing: analyses need the
// window geometry, and world regeneration needs nothing beyond Meta.
type RunConfig struct {
	// Days is the total number of simulated days; defaults to 364
	// (52 weeks, standing in for calendar year 2015).
	Days int
	// DailyStart/DailyLen delimit the high-resolution "daily dataset"
	// window (the paper's 2015-08-17..2015-12-06 = 112 days).
	DailyStart, DailyLen int
	// UADays is how many trailing days of the daily window sample
	// User-Agent strings (the paper restricts to the last month).
	UADays int
	// ICMPScanDays are the days (absolute) on which an ICMP campaign
	// snapshot is taken; defaults to 8 days spread over the month
	// starting at day DailyStart+56 (the paper's October).
	ICMPScanDays []int
	// PrefixChangeFrac is the fraction of routed prefixes that undergo
	// a bulk restructuring during the year.
	PrefixChangeFrac float64
	// BlockChangeFrac is the fraction of individual /24 blocks that
	// undergo a single-block assignment change.
	BlockChangeFrac float64
	// BGPCoupleProb is the probability a restructuring is accompanied
	// by a visible BGP change (Table 2 suggests ~10-13%).
	BGPCoupleProb float64
	// BGPNoisePerDay is the expected number of unrelated BGP events
	// per day per 1000 prefixes (background flapping).
	BGPNoisePerDay float64
	// JoinFrac/LeaveFrac are the fractions of subscribers whose
	// lifetime starts/ends mid-year (long-term single-address churn).
	JoinFrac, LeaveFrac float64
	// TrafficGrowth is the relative growth of heavy-hitter (gateway,
	// bot) traffic from the first to the last day, driving the
	// traffic-consolidation trend of Figure 9(c).
	TrafficGrowth float64
	// Workers is the number of shards the /24 address space is split
	// into for the observation loop; <= 0 means GOMAXPROCS. Every block
	// evolves from its own seeded stream and shards merge in block
	// order, so results are identical for any worker count.
	Workers int
}

// NumWeeks returns the number of weekly snapshots a run of this
// configuration produces (at least 1; a trailing partial week folds
// into the last snapshot).
func (c RunConfig) NumWeeks() int {
	w := c.Days / 7
	if w == 0 {
		w = 1
	}
	return w
}

// Meta identifies a dataset: the world it was generated from and the
// run configuration that produced it. Because world generation is
// deterministic, Meta.World is sufficient to regenerate the full
// synthetic Internet on the analysis side.
type Meta struct {
	World synthnet.Config
	Run   RunConfig
}

// RestructureKind classifies a ground-truth assignment change.
type RestructureKind uint8

// Restructure kinds (Section 5: reallocation, reconfiguration,
// repurposing; plus activation/deactivation of whole ranges).
const (
	PolicySwitch RestructureKind = iota // new assignment practice
	Deactivate                          // range goes dark
	Activate                            // unused range brought into service
)

// String returns the kind name.
func (k RestructureKind) String() string {
	switch k {
	case PolicySwitch:
		return "policy-switch"
	case Deactivate:
		return "deactivate"
	case Activate:
		return "activate"
	}
	return "unknown"
}

// Restructure records one scheduled assignment change (ground truth).
type Restructure struct {
	Prefix     ipv4.Prefix
	Day        int
	Kind       RestructureKind
	BGPVisible bool
	BGPKind    bgp.ChangeKind // meaningful if BGPVisible
}

// BlockTraffic aggregates per-address activity over the daily window.
type BlockTraffic struct {
	DaysActive [256]uint16
	Hits       [256]float64
}

// UAStat summarizes sampled User-Agent strings for one /24 block.
type UAStat struct {
	Samples int
	Sketch  *useragent.HLL
}

// Unique returns the estimated number of distinct UA strings sampled.
func (u *UAStat) Unique() float64 {
	if u.Sketch == nil {
		return 0
	}
	return u.Sketch.Estimate()
}

// Event is one typed observation emitted by the generation side.
// Receivers switch on the concrete type.
type Event interface{ isEvent() }

// MetaEvent opens a stream: it carries the dataset identity and sizes
// every per-day/per-week structure that follows.
type MetaEvent struct{ Meta Meta }

// DayEvent is one completed day of the high-resolution daily window.
// Index is relative to RunConfig.DailyStart.
type DayEvent struct {
	Index     int
	Active    *ipv4.Set
	TotalHits float64
}

// WeekEvent is one completed week: the union of its days' activity and
// the share of its traffic carried by the top 10% of addresses.
type WeekEvent struct {
	Index    int
	Active   *ipv4.Set
	TopShare float64
}

// ICMPScanEvent is one ICMP campaign snapshot; Index addresses
// RunConfig.ICMPScanDays.
type ICMPScanEvent struct {
	Index      int
	Responders *ipv4.Set
}

// BlockStatsEvent carries one block's daily-window aggregates: traffic
// per address and/or the UA sampling sketch. Either field may be nil.
type BlockStatsEvent struct {
	Block   ipv4.Block
	Traffic *BlockTraffic
	UA      *UAStat
}

// SurfacesEvent carries the static scan surfaces: addresses answering
// service-port scans and router addresses seen on traceroute paths.
type SurfacesEvent struct {
	Servers *ipv4.Set
	Routers *ipv4.Set
}

// RoutingEvent carries the year's BGP history.
type RoutingEvent struct{ Log *bgp.ChangeLog }

// RestructuresEvent carries the ground-truth change schedule.
type RestructuresEvent struct{ Restructures []Restructure }

func (MetaEvent) isEvent()         {}
func (DayEvent) isEvent()          {}
func (WeekEvent) isEvent()         {}
func (ICMPScanEvent) isEvent()     {}
func (BlockStatsEvent) isEvent()   {}
func (SurfacesEvent) isEvent()     {}
func (RoutingEvent) isEvent()      {}
func (RestructuresEvent) isEvent() {}

// Sink receives observation events. The generation side guarantees a
// serialized stream: Observe is never called concurrently, a MetaEvent
// arrives first, and event payloads are never mutated after emission —
// sinks may retain them without copying. A Sink that returns an error
// receives no further events.
type Sink interface {
	Observe(Event) error
}

// SinkFunc adapts a function to the Sink interface, the way
// http.HandlerFunc adapts handlers.
type SinkFunc func(Event) error

// Observe calls f(e).
func (f SinkFunc) Observe(e Event) error { return f(e) }

// TeeSink fans one serialized event stream out to several sinks, so a
// single live stream can feed storage and indexing (or any other pair
// of consumers) concurrently. A sink that returns an error is dropped
// from the fan-out and receives no further events; the stream keeps
// flowing to the remaining sinks. Observe itself only fails once every
// sink has failed, so the producer is not stopped by one bad consumer.
type TeeSink struct {
	sinks []Sink
	errs  []error
}

// Tee returns a TeeSink delivering every event to each sink in order.
func Tee(sinks ...Sink) *TeeSink {
	return &TeeSink{sinks: sinks, errs: make([]error, len(sinks))}
}

// Observe delivers e to every sink that has not previously failed.
func (t *TeeSink) Observe(e Event) error {
	healthy := false
	for i, s := range t.sinks {
		if t.errs[i] != nil {
			continue
		}
		if err := s.Observe(e); err != nil {
			t.errs[i] = err
		} else {
			healthy = true
		}
	}
	if !healthy && len(t.sinks) > 0 {
		return t.Err()
	}
	return nil
}

// Err joins the errors of every failed sink (nil if none failed).
func (t *TeeSink) Err() error { return errors.Join(t.errs...) }

// Source yields a complete observation dataset. Implementations
// include *Data itself, FileSource (a stored dataset), and *sim.Result
// (a live run).
type Source interface {
	Observations() (*Data, error)
}

// Data is the canonical in-memory observation dataset: everything the
// analyses consume, decoupled from how it was produced (live
// simulation, dataset file, network ingest). It implements both Sink
// (collecting events) and Source (serving itself).
type Data struct {
	Meta Meta

	// Daily[i] is the set of addresses active on day DailyStart+i.
	Daily []*ipv4.Set
	// DailyTotalHits[i] is the total request volume on day DailyStart+i.
	DailyTotalHits []float64
	// Weekly[wk] is the set of addresses active during week wk
	// (union of its 7 days) across the whole run.
	Weekly []*ipv4.Set
	// WeeklyTopShare[wk] is the fraction of that week's traffic that
	// went to the top 10% of addresses by traffic (Figure 9c).
	WeeklyTopShare []float64
	// Traffic holds per-address aggregates over the daily window.
	Traffic map[ipv4.Block]*BlockTraffic
	// UA holds per-block User-Agent sampling statistics for the UA window.
	UA map[ipv4.Block]*UAStat
	// ICMPScans[i] is the set of addresses that answered the ICMP
	// campaign on Meta.Run.ICMPScanDays[i].
	ICMPScans []*ipv4.Set
	// ServerSet are addresses answering service-port scans (HTTP(S),
	// SMTP, ...): the ZMap service-scan substitute.
	ServerSet *ipv4.Set
	// RouterSet are router addresses appearing in traceroutes (the
	// Ark substitute).
	RouterSet *ipv4.Set
	// Routing is the year's BGP history as a change log.
	Routing *bgp.ChangeLog
	// Restructures is the ground-truth change schedule.
	Restructures []Restructure
}

// Observe applies one event to the dataset. Later events for the same
// index supersede earlier ones; an index outside the geometry declared
// by the MetaEvent is an error, so a corrupted stream cannot decode
// into a silently incomplete dataset.
func (d *Data) Observe(e Event) error {
	switch ev := e.(type) {
	case MetaEvent:
		d.Meta = ev.Meta
		run := ev.Meta.Run
		d.Daily = newSets(run.DailyLen)
		d.DailyTotalHits = make([]float64, run.DailyLen)
		// Weekly slots stay nil until their event arrives: the week
		// count derives from the campaign length, not the applied
		// prefix, so on a stream prefix the unclosed tail must remain
		// distinguishable from closed-but-empty weeks (WriteTo skips it,
		// keeping prefix datasets faithful through a round trip).
		d.Weekly = make([]*ipv4.Set, run.NumWeeks())
		d.WeeklyTopShare = make([]float64, run.NumWeeks())
		d.ICMPScans = newSets(len(run.ICMPScanDays))
		d.Traffic = make(map[ipv4.Block]*BlockTraffic)
		d.UA = make(map[ipv4.Block]*UAStat)
		d.ServerSet = ipv4.NewSet()
		d.RouterSet = ipv4.NewSet()
	case DayEvent:
		if ev.Index < 0 || ev.Index >= len(d.Daily) {
			return formatErrf("day event index %d outside window of %d days", ev.Index, len(d.Daily))
		}
		d.Daily[ev.Index] = ev.Active
		d.DailyTotalHits[ev.Index] = ev.TotalHits
	case WeekEvent:
		if ev.Index < 0 || ev.Index >= len(d.Weekly) {
			return formatErrf("week event index %d outside run of %d weeks", ev.Index, len(d.Weekly))
		}
		d.Weekly[ev.Index] = ev.Active
		d.WeeklyTopShare[ev.Index] = ev.TopShare
	case ICMPScanEvent:
		if ev.Index < 0 || ev.Index >= len(d.ICMPScans) {
			return formatErrf("ICMP scan event index %d outside campaign of %d snapshots", ev.Index, len(d.ICMPScans))
		}
		d.ICMPScans[ev.Index] = ev.Responders
	case BlockStatsEvent:
		if ev.Traffic != nil {
			d.Traffic[ev.Block] = ev.Traffic
		}
		if ev.UA != nil {
			d.UA[ev.Block] = ev.UA
		}
	case SurfacesEvent:
		d.ServerSet, d.RouterSet = ev.Servers, ev.Routers
	case RoutingEvent:
		d.Routing = ev.Log
	case RestructuresEvent:
		d.Restructures = ev.Restructures
	}
	return nil
}

// Observations returns the dataset itself: *Data is a Source.
func (d *Data) Observations() (*Data, error) { return d, nil }

// WriteTo replays the dataset as events into sink, in canonical order:
// meta, restructures, routing, days, ICMP scans, weeks, per-block
// stats (ascending block order), surfaces. Encoding a Data this way is
// deterministic: equal datasets produce byte-identical streams.
func (d *Data) WriteTo(sink Sink) error {
	events := make([]Event, 0, 8)
	events = append(events,
		MetaEvent{Meta: d.Meta},
		RestructuresEvent{Restructures: d.Restructures},
		RoutingEvent{Log: d.Routing},
	)
	for i, s := range d.Daily {
		events = append(events, DayEvent{Index: i, Active: s, TotalHits: d.DailyTotalHits[i]})
	}
	for i, s := range d.ICMPScans {
		events = append(events, ICMPScanEvent{Index: i, Responders: s})
	}
	for i, s := range d.Weekly {
		if s == nil {
			continue // week not closed at this stream prefix
		}
		events = append(events, WeekEvent{Index: i, Active: s, TopShare: d.WeeklyTopShare[i]})
	}
	for _, blk := range d.statBlocks() {
		events = append(events, BlockStatsEvent{Block: blk, Traffic: d.Traffic[blk], UA: d.UA[blk]})
	}
	events = append(events, SurfacesEvent{Servers: d.ServerSet, Routers: d.RouterSet})
	for _, e := range events {
		if err := sink.Observe(e); err != nil {
			return err
		}
	}
	return nil
}

// statBlocks returns the union of Traffic and UA keys in ascending
// block order.
func (d *Data) statBlocks() []ipv4.Block {
	seen := make(map[ipv4.Block]bool, len(d.Traffic)+len(d.UA))
	for b := range d.Traffic {
		seen[b] = true
	}
	for b := range d.UA {
		seen[b] = true
	}
	return sortedBlocks(seen)
}

// DailyWindowUnion returns the union of all daily sets.
func (d *Data) DailyWindowUnion() *ipv4.Set {
	return ipv4.UnionAll(d.Daily, d.Meta.Run.Workers)
}

// YearUnion returns the union of all weekly sets.
func (d *Data) YearUnion() *ipv4.Set {
	return ipv4.UnionAll(d.Weekly, d.Meta.Run.Workers)
}

// ICMPUnion returns the union of all ICMP campaign snapshots.
func (d *Data) ICMPUnion() *ipv4.Set {
	return ipv4.UnionAll(d.ICMPScans, d.Meta.Run.Workers)
}

// CampaignMonthUnion returns the set of addresses active during the
// month the ICMP campaign ran: the scan window expanded symmetrically
// to at least 28 days, clamped to the daily window (the paper compares
// a full month of CDN logs against 8 ICMP snapshots, Section 3.2).
// Both the batch report's visibility/recapture experiments and the
// query index's summary use this one definition, which is what keeps
// their numbers field-identical.
func (d *Data) CampaignMonthUnion() *ipv4.Set {
	cfg := d.Meta.Run
	if len(cfg.ICMPScanDays) == 0 {
		return d.DailyWindowUnion()
	}
	first := cfg.ICMPScanDays[0]
	last := cfg.ICMPScanDays[len(cfg.ICMPScanDays)-1]
	from := first - cfg.DailyStart
	to := last - cfg.DailyStart + 1
	if span := to - from; span < 28 {
		from -= (28 - span) / 2
		to = from + 28
	}
	return core.WindowUnion(d.Daily, from, to)
}

// TrafficBlocks returns the blocks with traffic aggregates in ascending
// order. Analyses that fold per-address traffic into floating-point
// accumulators must iterate in this order to stay deterministic (Go map
// order is randomized).
func (d *Data) TrafficBlocks() []ipv4.Block {
	out := make([]ipv4.Block, 0, len(d.Traffic))
	for b := range d.Traffic {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedBlocks(seen map[ipv4.Block]bool) []ipv4.Block {
	out := make([]ipv4.Block, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func newSets(n int) []*ipv4.Set {
	out := make([]*ipv4.Set, n)
	for i := range out {
		out[i] = ipv4.NewSet()
	}
	return out
}
