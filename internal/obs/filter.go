package obs

import "ipscope/internal/ipv4"

// FilterSink wraps sink so it only sees the slice of the observation
// stream that belongs to the /24 blocks keep accepts — the primitive
// behind cluster shards, where each serving node applies (and pays
// for) only its partition of the block space. Set-valued events
// (days, weeks, ICMP scans, surfaces) are restricted to kept blocks,
// per-block stats events for foreign blocks are dropped, and
// stream-global events (meta, routing, restructures) pass through
// unchanged. Scalar fields that aggregate over the whole address space
// (DayEvent.TotalHits, WeekEvent.TopShare) also pass through: they are
// not block-partitionable, and no partitioned consumer derives shard
// totals from them.
//
// Filtering preserves the Sink contract: payloads handed downstream
// are fresh copies, never mutations of the originals.
func FilterSink(sink Sink, keep func(ipv4.Block) bool) Sink {
	return &filterSink{sink: sink, keep: keep}
}

type filterSink struct {
	sink Sink
	keep func(ipv4.Block) bool
}

func (f *filterSink) Observe(e Event) error {
	switch ev := e.(type) {
	case DayEvent:
		ev.Active = ev.Active.FilterBlocks(f.keep)
		return f.sink.Observe(ev)
	case WeekEvent:
		ev.Active = ev.Active.FilterBlocks(f.keep)
		return f.sink.Observe(ev)
	case ICMPScanEvent:
		ev.Responders = ev.Responders.FilterBlocks(f.keep)
		return f.sink.Observe(ev)
	case BlockStatsEvent:
		if !f.keep(ev.Block) {
			return nil
		}
		return f.sink.Observe(ev)
	case SurfacesEvent:
		ev.Servers = ev.Servers.FilterBlocks(f.keep)
		ev.Routers = ev.Routers.FilterBlocks(f.keep)
		return f.sink.Observe(ev)
	default:
		return f.sink.Observe(e)
	}
}

// FilterSource restricts src to the blocks keep accepts: Observations
// replays the underlying dataset through a FilterSink into a fresh
// Data, so a shard build over the result pays index cost only for its
// partition. The filtered dataset keeps the full window geometry (every
// day/week slot exists; foreign blocks are simply absent from the
// sets), which is what makes per-shard summaries mergeable slot by
// slot.
func FilterSource(src Source, keep func(ipv4.Block) bool) Source {
	return &filterSource{src: src, keep: keep}
}

type filterSource struct {
	src  Source
	keep func(ipv4.Block) bool
}

func (f *filterSource) Observations() (*Data, error) {
	d, err := f.src.Observations()
	if err != nil {
		return nil, err
	}
	out := &Data{}
	if err := d.WriteTo(FilterSink(out, f.keep)); err != nil {
		return nil, err
	}
	return out, nil
}
