package obs

import (
	"testing"

	"ipscope/internal/ipv4"
)

// filterTestData hand-builds a small dataset spanning several /24
// blocks (no simulator: sim imports obs).
func filterTestData(t *testing.T) *Data {
	t.Helper()
	d := &Data{}
	meta := Meta{Run: RunConfig{Days: 14, DailyStart: 0, DailyLen: 3, ICMPScanDays: []int{1}}}
	events := []Event{MetaEvent{Meta: meta}}

	blockAddrs := func(blocks []string, hosts int) *ipv4.Set {
		s := ipv4.NewSet()
		for _, b := range blocks {
			blk := ipv4.MustParsePrefix(b).FirstBlock()
			for h := 0; h < hosts; h++ {
				s.Add(blk.Addr(byte(h)))
			}
		}
		return s
	}
	days := []*ipv4.Set{
		blockAddrs([]string{"10.0.0.0/24", "10.0.9.0/24", "192.168.3.0/24"}, 5),
		blockAddrs([]string{"10.0.0.0/24", "192.168.3.0/24"}, 9),
		blockAddrs([]string{"10.0.9.0/24", "172.16.0.0/24"}, 2),
	}
	for i, s := range days {
		events = append(events, DayEvent{Index: i, Active: s, TotalHits: float64(100 + i)})
	}
	events = append(events,
		WeekEvent{Index: 0, Active: blockAddrs([]string{"10.0.0.0/24", "172.16.0.0/24"}, 4), TopShare: 0.5},
		WeekEvent{Index: 1, Active: blockAddrs([]string{"192.168.3.0/24"}, 4), TopShare: 0.6},
		ICMPScanEvent{Index: 0, Responders: blockAddrs([]string{"10.0.0.0/24", "192.168.3.0/24"}, 3)},
		BlockStatsEvent{Block: ipv4.MustParsePrefix("10.0.0.0/24").FirstBlock(), Traffic: &BlockTraffic{}},
		BlockStatsEvent{Block: ipv4.MustParsePrefix("192.168.3.0/24").FirstBlock(), UA: &UAStat{Samples: 7}},
		SurfacesEvent{
			Servers: blockAddrs([]string{"10.0.9.0/24"}, 2),
			Routers: blockAddrs([]string{"172.16.0.0/24"}, 2),
		},
	)
	for _, e := range events {
		if err := d.Observe(e); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// TestFilterSourcePartitions pins the property cluster sharding builds
// on: filtering a dataset through the complementary halves of a block
// partition yields disjoint slices whose per-day cardinalities sum to
// the original's, with stream-global payloads intact.
func TestFilterSourcePartitions(t *testing.T) {
	d := filterTestData(t)
	pivot := ipv4.MustParsePrefix("172.16.0.0/24").FirstBlock()
	keepLo := func(b ipv4.Block) bool { return b < pivot }
	keepHi := func(b ipv4.Block) bool { return b >= pivot }

	lo, err := FilterSource(d, keepLo).Observations()
	if err != nil {
		t.Fatal(err)
	}
	hi, err := FilterSource(d, keepHi).Observations()
	if err != nil {
		t.Fatal(err)
	}

	if len(lo.Daily) != len(d.Daily) || len(hi.Daily) != len(d.Daily) {
		t.Fatal("filtering must keep the window geometry")
	}
	for day := range d.Daily {
		if got := lo.Daily[day].Len() + hi.Daily[day].Len(); got != d.Daily[day].Len() {
			t.Fatalf("day %d: partition lens %d != original %d", day, got, d.Daily[day].Len())
		}
		if lo.Daily[day].IntersectCount(hi.Daily[day]) != 0 {
			t.Fatalf("day %d: partitions overlap", day)
		}
		if lo.DailyTotalHits[day] != d.DailyTotalHits[day] {
			t.Fatalf("day %d: global total hits must pass through", day)
		}
	}
	for wk := range d.Weekly {
		if got := lo.Weekly[wk].Len() + hi.Weekly[wk].Len(); got != d.Weekly[wk].Len() {
			t.Fatalf("week %d: partition lens %d != original %d", wk, got, d.Weekly[wk].Len())
		}
		if lo.WeeklyTopShare[wk] != d.WeeklyTopShare[wk] {
			t.Fatalf("week %d: global top share must pass through", wk)
		}
	}
	if len(lo.Traffic) != 1 || len(hi.Traffic) != 0 {
		t.Fatalf("traffic events misrouted: lo=%d hi=%d", len(lo.Traffic), len(hi.Traffic))
	}
	if len(lo.UA) != 0 || len(hi.UA) != 1 {
		t.Fatalf("UA events misrouted: lo=%d hi=%d", len(lo.UA), len(hi.UA))
	}
	if got := lo.ICMPUnion().Len() + hi.ICMPUnion().Len(); got != d.ICMPUnion().Len() {
		t.Fatalf("ICMP union partition lens %d != original %d", got, d.ICMPUnion().Len())
	}
	if lo.ServerSet.Len() != d.ServerSet.Len() || hi.ServerSet.Len() != 0 {
		t.Fatal("server surface misrouted")
	}
	if hi.RouterSet.Len() != d.RouterSet.Len() || lo.RouterSet.Len() != 0 {
		t.Fatal("router surface misrouted")
	}
	// The filtered datasets must not alias the original's sets.
	lo.Daily[0].Add(ipv4.MustParseAddr("10.0.0.250"))
	if d.Daily[0].Contains(ipv4.MustParseAddr("10.0.0.250")) {
		t.Fatal("filtered set aliases the original")
	}
}
