package obs

import (
	"bytes"
	"testing"
)

// canonical returns the dataset's canonical encoding, the equality
// witness for the scenario edge-case tests: equal datasets encode to
// identical bytes.
func canonical(t *testing.T, d *Data) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTruncateWindowLongerThanRun(t *testing.T) {
	d := sampleData(t, 11)
	if got := d.TruncateWindow(len(d.Daily)); got != d {
		t.Error("n == window length should be the identity")
	}
	if got := d.TruncateWindow(len(d.Daily) + 50); got != d {
		t.Error("n beyond the window should be the identity")
	}
	if got := d.TruncateWindow(0); got != d {
		t.Error("n == 0 should be the identity")
	}
	if got := d.TruncateWindow(-3); got != d {
		t.Error("negative n should be the identity")
	}
}

func TestTruncateWindowIdempotent(t *testing.T) {
	d := sampleData(t, 12)
	n := len(d.Daily) / 2
	once := d.TruncateWindow(n)
	twice := once.TruncateWindow(n)
	if !bytes.Equal(canonical(t, once), canonical(t, twice)) {
		t.Error("re-applying the same truncation changed the dataset")
	}

	// Composition: truncating in two steps equals truncating once to the
	// smaller window (per-address hit scaling multiplies through).
	small := n / 2
	direct := d.TruncateWindow(small)
	stepped := d.TruncateWindow(n).TruncateWindow(small)
	if !bytes.Equal(canonical(t, direct), canonical(t, stepped)) {
		t.Error("truncate(n1) then truncate(n2) differs from truncate(n2)")
	}
}

func TestSubsampleVantageZeroFraction(t *testing.T) {
	d := sampleData(t, 13)
	for _, frac := range []float64{0, -0.5} {
		got := d.SubsampleVantage(frac, 7)
		if got == d {
			t.Fatalf("frac=%v should not be the identity", frac)
		}
		for i, s := range got.Daily {
			if s.Len() != 0 {
				t.Fatalf("frac=%v: day %d kept %d addresses", frac, i, s.Len())
			}
		}
		if got.YearUnion().Len() != 0 || got.ICMPUnion().Len() != 0 {
			t.Errorf("frac=%v: weekly/ICMP sets not empty", frac)
		}
		if got.ServerSet.Len() != 0 || got.RouterSet.Len() != 0 {
			t.Errorf("frac=%v: scan surfaces not empty", frac)
		}
		if len(got.Traffic) != 0 || len(got.UA) != 0 {
			t.Errorf("frac=%v: kept %d traffic / %d UA blocks",
				frac, len(got.Traffic), len(got.UA))
		}
		for i, h := range got.DailyTotalHits {
			if h != 0 {
				t.Fatalf("frac=%v: day %d total hits %v, want 0", frac, i, h)
			}
		}
	}
}

func TestSubsampleVantageIdempotent(t *testing.T) {
	d := sampleData(t, 14)
	once := d.SubsampleVantage(0.5, 42)
	twice := once.SubsampleVantage(0.5, 42)
	if !bytes.Equal(canonical(t, once), canonical(t, twice)) {
		t.Error("re-applying the same subsample changed the dataset")
	}
}
