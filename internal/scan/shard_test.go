package scan

import (
	"testing"
	"testing/quick"
)

func TestShardsPartition(t *testing.T) {
	const n = 1000
	for _, k := range []int{1, 2, 3, 7} {
		seen := make([]int, n)
		for i := 0; i < k; i++ {
			sh, err := NewShard(n, 42, i, k)
			if err != nil {
				t.Fatal(err)
			}
			for {
				v, ok := sh.Next()
				if !ok {
					break
				}
				seen[v]++
			}
		}
		for v, c := range seen {
			if c != 1 {
				t.Fatalf("k=%d: element %d visited %d times", k, v, c)
			}
		}
	}
}

func TestShardsDisjointProperty(t *testing.T) {
	f := func(nRaw uint16, seed uint64, kRaw uint8) bool {
		n := uint64(nRaw%500) + 1
		k := int(kRaw%5) + 1
		union := make(map[uint64]int)
		for i := 0; i < k; i++ {
			sh, err := NewShard(n, seed, i, k)
			if err != nil {
				return false
			}
			for {
				v, ok := sh.Next()
				if !ok {
					break
				}
				union[v]++
			}
		}
		if uint64(len(union)) != n {
			return false
		}
		for _, c := range union {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShardBalance(t *testing.T) {
	const n, k = 10000, 4
	for i := 0; i < k; i++ {
		sh, _ := NewShard(n, 7, i, k)
		count := 0
		for {
			if _, ok := sh.Next(); !ok {
				break
			}
			count++
		}
		if count < n/k-1 || count > n/k+1 {
			t.Errorf("shard %d got %d of %d", i, count, n)
		}
	}
}

func TestShardReset(t *testing.T) {
	sh, _ := NewShard(100, 9, 1, 3)
	var first []uint64
	for {
		v, ok := sh.Next()
		if !ok {
			break
		}
		first = append(first, v)
	}
	sh.Reset()
	for i := 0; ; i++ {
		v, ok := sh.Next()
		if !ok {
			if i != len(first) {
				t.Fatal("reset length differs")
			}
			break
		}
		if v != first[i] {
			t.Fatal("reset diverged")
		}
	}
}

func TestShardErrors(t *testing.T) {
	if _, err := NewShard(10, 1, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewShard(10, 1, 3, 3); err == nil {
		t.Error("i=k accepted")
	}
	if _, err := NewShard(0, 1, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
}
