package scan

import "fmt"

// Sharding splits a scan across k independent scanners, as introduced
// for distributed ZMap campaigns (Adrian et al., "Zippier ZMap"):
// shard i of k visits exactly the permutation elements congruent to its
// emission index mod k, so the shards partition the target space with
// no coordination beyond (seed, i, k).

// Shard iterates the subset of a Permutation assigned to one scanner.
type Shard struct {
	perm *Permutation
	k    int
	i    int
	pos  int
}

// NewShard returns shard i of k over a permutation of [0, n) with the
// given seed. All shards of a campaign must share n and seed.
func NewShard(n uint64, seed uint64, i, k int) (*Shard, error) {
	if k <= 0 || i < 0 || i >= k {
		return nil, fmt.Errorf("scan: invalid shard %d of %d", i, k)
	}
	p, err := NewPermutation(n, seed)
	if err != nil {
		return nil, err
	}
	return &Shard{perm: p, k: k, i: i}, nil
}

// Next returns the shard's next target index; ok is false when the
// shard is exhausted.
func (s *Shard) Next() (uint64, bool) {
	for {
		v, ok := s.perm.Next()
		if !ok {
			return 0, false
		}
		mine := s.pos%s.k == s.i
		s.pos++
		if mine {
			return v, true
		}
	}
}

// Reset restarts the shard.
func (s *Shard) Reset() {
	s.perm.Reset()
	s.pos = 0
}
