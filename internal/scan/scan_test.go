package scan

import (
	"testing"
	"testing/quick"

	"ipscope/internal/ipv4"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

func TestPermutationIsPermutation(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 7, 16, 100, 257, 1000} {
		for seed := uint64(0); seed < 5; seed++ {
			p, err := NewPermutation(n, seed)
			if err != nil {
				t.Fatal(err)
			}
			seen := make([]bool, n)
			count := uint64(0)
			for {
				v, ok := p.Next()
				if !ok {
					break
				}
				if v >= n {
					t.Fatalf("n=%d seed=%d: out of range %d", n, seed, v)
				}
				if seen[v] {
					t.Fatalf("n=%d seed=%d: duplicate %d", n, seed, v)
				}
				seen[v] = true
				count++
			}
			if count != n {
				t.Fatalf("n=%d seed=%d: emitted %d", n, seed, count)
			}
		}
	}
}

func TestPermutationProperty(t *testing.T) {
	f := func(nRaw uint16, seed uint64) bool {
		n := uint64(nRaw%2000) + 1
		p, err := NewPermutation(n, seed)
		if err != nil {
			return false
		}
		seen := make(map[uint64]bool, n)
		for {
			v, ok := p.Next()
			if !ok {
				break
			}
			if v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return uint64(len(seen)) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationReset(t *testing.T) {
	p, _ := NewPermutation(50, 9)
	var first []uint64
	for {
		v, ok := p.Next()
		if !ok {
			break
		}
		first = append(first, v)
	}
	p.Reset()
	for i := 0; ; i++ {
		v, ok := p.Next()
		if !ok {
			if i != len(first) {
				t.Fatal("reset run shorter")
			}
			break
		}
		if v != first[i] {
			t.Fatalf("reset diverged at %d", i)
		}
	}
}

func TestPermutationNotIdentity(t *testing.T) {
	// The scan order should not be sequential (that is the whole point).
	p, _ := NewPermutation(1000, 12345)
	sequentialRun := 0
	var prev uint64
	for i := 0; ; i++ {
		v, ok := p.Next()
		if !ok {
			break
		}
		if i > 0 && v == prev+1 {
			sequentialRun++
		}
		prev = v
	}
	if sequentialRun > 500 {
		t.Errorf("order looks sequential: %d consecutive steps", sequentialRun)
	}
}

func TestPermutationErrors(t *testing.T) {
	if _, err := NewPermutation(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewPermutation(1<<33, 1); err == nil {
		t.Error("n>2^32 accepted")
	}
}

func TestScan(t *testing.T) {
	responders := ipv4.NewSet()
	responders.Add(ipv4.MustParseAddr("10.0.0.7"))
	responders.Add(ipv4.MustParseAddr("10.0.1.9"))
	responders.Add(ipv4.MustParseAddr("99.0.0.1")) // outside targets

	targets := []ipv4.Prefix{
		ipv4.MustParsePrefix("10.0.0.0/24"),
		ipv4.MustParsePrefix("10.0.1.0/24"),
	}
	got, err := Scan(SetResponder{responders}, targets, 42)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("scan found %d", got.Len())
	}
	if !got.Contains(ipv4.MustParseAddr("10.0.0.7")) || !got.Contains(ipv4.MustParseAddr("10.0.1.9")) {
		t.Error("missing responders")
	}
	if got.Contains(ipv4.MustParseAddr("99.0.0.1")) {
		t.Error("found address outside targets")
	}
	// Seed must not change the result set.
	got2, _ := Scan(SetResponder{responders}, targets, 99999)
	if !got.Equal(got2) {
		t.Error("scan result depends on seed")
	}
	// Empty targets.
	if empty, err := Scan(SetResponder{responders}, nil, 1); err != nil || empty.Len() != 0 {
		t.Error("empty target scan broken")
	}
}

func TestCampaignFromResult(t *testing.T) {
	w := synthnet.Generate(synthnet.TinyConfig())
	res := sim.Run(w, sim.TinyConfig())
	c := FromObs(&res.Data)
	if c.ICMP.Len() == 0 || len(c.PerScan) == 0 {
		t.Fatal("empty campaign")
	}
	if c.Servers.Len() == 0 || c.Routers.Len() == 0 {
		t.Fatal("missing scan surfaces")
	}
	// The union must contain every per-scan snapshot.
	for i, s := range c.PerScan {
		if s.DiffCount(c.ICMP) != 0 {
			t.Errorf("scan %d not contained in union", i)
		}
	}
	targets := Targets(w)
	if len(targets) == 0 {
		t.Fatal("no targets")
	}
	// Scanning the world for the server surface finds exactly the
	// in-target servers.
	found, err := Scan(SetResponder{c.Servers}, targets, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !found.Equal(c.Servers) {
		t.Errorf("scan found %d of %d servers", found.Len(), c.Servers.Len())
	}
}
