// Package scan implements the active-measurement substitute: a
// ZMap-style scanner that probes targets in a pseudorandom order
// (visiting every target exactly once, like ZMap's cyclic-group address
// randomization), plus campaign assembly over the simulator's
// responsiveness snapshots and traceroute/service surfaces.
package scan

import "fmt"

// Permutation iterates a pseudorandom permutation of [0, n): every
// element is visited exactly once before Next reports done.
//
// ZMap permutes the full 2^32 address space by walking the
// multiplicative group modulo the prime 2^32+15. For arbitrary target
// counts we use the equivalent classical construction with bounded
// skip overhead: a full-period LCG over the next power of two
// (Hull–Dobell theorem guarantees period m when c is odd and a ≡ 1
// mod 4), discarding values >= n. At most half the iterates are
// discarded, so Next is amortized O(1).
type Permutation struct {
	n       uint64
	m       uint64 // power-of-two modulus >= n
	a, c    uint64
	first   uint64
	cur     uint64
	emitted uint64
}

// NewPermutation creates a permutation of [0, n) seeded by seed.
// n must be in (0, 2^32].
func NewPermutation(n uint64, seed uint64) (*Permutation, error) {
	if n == 0 || n > 1<<32 {
		return nil, fmt.Errorf("scan: invalid permutation size %d", n)
	}
	m := uint64(1)
	for m < n {
		m <<= 1
	}
	p := &Permutation{
		n: n,
		m: m,
		// Derive multiplier and increment from the seed while keeping
		// the Hull–Dobell conditions: a ≡ 1 (mod 4), c odd.
		a: (seed<<2 | 1) % m,
		c: (seed>>3)<<1%m | 1,
	}
	if p.a%4 != 1 {
		p.a = p.a&^3 | 1
	}
	if p.a == 0 || p.a >= m {
		p.a = 5 % m
		if p.a == 0 {
			p.a = 1
		}
	}
	p.first = seed % m
	p.cur = p.first
	return p, nil
}

// Next returns the next element of the permutation. ok is false when
// all n elements have been emitted.
func (p *Permutation) Next() (v uint64, ok bool) {
	for p.emitted < p.n {
		cur := p.cur
		p.cur = (p.a*p.cur + p.c) % p.m
		if cur < p.n {
			p.emitted++
			return cur, true
		}
	}
	return 0, false
}

// Reset restarts the permutation from its first element.
func (p *Permutation) Reset() {
	p.cur = p.first
	p.emitted = 0
}
