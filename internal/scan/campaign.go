package scan

import (
	"ipscope/internal/ipv4"
	"ipscope/internal/obs"
	"ipscope/internal/synthnet"
)

// Responder answers probes: the scanner's view of the network. In
// production this is the Internet; here it is backed by the simulator's
// responsiveness snapshots.
type Responder interface {
	// Respond reports whether addr answers a probe.
	Respond(addr ipv4.Addr) bool
}

// SetResponder adapts an address set to a Responder.
type SetResponder struct{ Set *ipv4.Set }

// Respond reports membership.
func (s SetResponder) Respond(a ipv4.Addr) bool { return s.Set.Contains(a) }

// Scan probes every address of the target prefixes in ZMap-style
// pseudorandom order and returns the responding set. The permutation
// covers the concatenated target space; seed controls the order (the
// result is order-independent, but the iteration mirrors how a real
// campaign spreads probes across targets).
func Scan(r Responder, targets []ipv4.Prefix, seed uint64) (*ipv4.Set, error) {
	total := uint64(0)
	for _, p := range targets {
		total += p.NumAddrs()
	}
	out := ipv4.NewSet()
	if total == 0 {
		return out, nil
	}
	perm, err := NewPermutation(total, seed)
	if err != nil {
		return nil, err
	}
	// Offsets for mapping permuted indices back into target prefixes.
	offsets := make([]uint64, len(targets)+1)
	for i, p := range targets {
		offsets[i+1] = offsets[i] + p.NumAddrs()
	}
	for {
		idx, ok := perm.Next()
		if !ok {
			break
		}
		// Binary search the containing prefix.
		lo, hi := 0, len(targets)
		for lo+1 < hi {
			mid := (lo + hi) / 2
			if offsets[mid] <= idx {
				lo = mid
			} else {
				hi = mid
			}
		}
		addr := ipv4.Addr(uint32(targets[lo].Addr()) + uint32(idx-offsets[lo]))
		if r.Respond(addr) {
			out.Add(addr)
		}
	}
	return out, nil
}

// Campaign bundles the active-measurement view used by the Section 3
// analyses: the union of ICMP snapshots, the service-scan surface and
// the traceroute-derived router surface.
type Campaign struct {
	// ICMP is the union of all ICMP scan snapshots (the paper's
	// "union of 8 ICMP scans").
	ICMP *ipv4.Set
	// PerScan holds each snapshot separately.
	PerScan []*ipv4.Set
	// Servers are addresses answering HTTP(S)/SMTP/IMAP/POP3 scans.
	Servers *ipv4.Set
	// Routers are addresses observed on traceroute paths.
	Routers *ipv4.Set
}

// FromObs assembles a Campaign from an observation dataset — live
// (a *sim.Result's data) or decoded from storage; the scanner's view
// is part of the dataset either way.
func FromObs(d *obs.Data) *Campaign {
	return &Campaign{
		ICMP:    d.ICMPUnion(),
		PerScan: d.ICMPScans,
		Servers: d.ServerSet,
		Routers: d.RouterSet,
	}
}

// Targets returns all routed prefixes of a world, the natural target
// list for a campaign.
func Targets(w *synthnet.World) []ipv4.Prefix {
	var out []ipv4.Prefix
	for _, as := range w.ASes {
		out = append(out, as.Prefixes...)
	}
	return out
}
