package useragent

import (
	"fmt"
	"math"
	"testing"

	"ipscope/internal/xrand"
)

func TestClassString(t *testing.T) {
	want := map[Class]string{
		ClassResidential: "residential", ClassBot: "bot",
		ClassGateway: "gateway", ClassEnterprise: "enterprise",
		Class(99): "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestDeviceDeterministic(t *testing.T) {
	d1 := NewDevice(42)
	d2 := NewDevice(42)
	if d1.browser != d2.browser || len(d1.apps) != len(d2.apps) {
		t.Fatal("device generation not deterministic")
	}
	r1 := xrand.New(1, "ua")
	r2 := xrand.New(1, "ua")
	for i := 0; i < 50; i++ {
		if d1.UA(r1) != d2.UA(r2) {
			t.Fatal("UA stream not deterministic")
		}
	}
}

func TestDeviceUANonEmpty(t *testing.T) {
	r := xrand.New(2, "ua")
	for seed := uint64(0); seed < 100; seed++ {
		d := NewDevice(seed)
		if d.UA(r) == "" {
			t.Fatal("empty UA")
		}
	}
	if BotUA(1) == "" || BotUA(1) != BotUA(1) {
		t.Fatal("BotUA broken")
	}
}

func TestSamplerRate(t *testing.T) {
	s := NewSampler(3, 100)
	n := 0
	const trials = 200000
	for i := 0; i < trials; i++ {
		if s.Sample() {
			n++
		}
	}
	got := float64(n) / trials
	if math.Abs(got-0.01) > 0.002 {
		t.Errorf("sample rate = %v, want ~0.01", got)
	}
	always := NewSampler(3, 1)
	if !always.Sample() {
		t.Error("rate 1 must sample everything")
	}
	if NewSampler(3, 0).rate != 1 {
		t.Error("rate 0 should clamp to 1")
	}
}

func TestSamplerSampleN(t *testing.T) {
	s := NewSampler(5, 4096)
	// Large n path (normal approximation).
	n := 4096 * 100
	got := s.SampleN(n)
	if got < 50 || got > 150 {
		t.Errorf("SampleN(%d) = %d, want ~100", n, got)
	}
	// Small n path.
	total := 0
	for i := 0; i < 1000; i++ {
		total += s.SampleN(409)
	}
	// Expectation: 1000 * 409/4096 ≈ 100.
	if total < 40 || total > 200 {
		t.Errorf("small-n SampleN total = %d, want ~100", total)
	}
	if s2 := NewSampler(5, 1); s2.SampleN(77) != 77 {
		t.Error("rate-1 SampleN should return n")
	}
}

func TestHLLAccuracy(t *testing.T) {
	for _, trueN := range []int{10, 100, 1000, 50000} {
		h := NewHLL(12)
		for i := 0; i < trueN; i++ {
			h.AddString(fmt.Sprintf("ua-string-%d", i))
		}
		est := h.Estimate()
		relErr := math.Abs(est-float64(trueN)) / float64(trueN)
		// 2^12 registers => ~1.6% standard error; allow 6%.
		if relErr > 0.06 {
			t.Errorf("n=%d: estimate %.0f (rel err %.3f)", trueN, est, relErr)
		}
	}
}

func TestHLLDuplicatesDontInflate(t *testing.T) {
	h := NewHLL(10)
	for i := 0; i < 100; i++ {
		for rep := 0; rep < 50; rep++ {
			h.AddString(fmt.Sprintf("dup-%d", i))
		}
	}
	est := h.Estimate()
	if est < 80 || est > 120 {
		t.Errorf("estimate with duplicates = %.0f, want ~100", est)
	}
}

func TestHLLMerge(t *testing.T) {
	a, b := NewHLL(11), NewHLL(11)
	for i := 0; i < 500; i++ {
		a.AddString(fmt.Sprintf("a-%d", i))
		b.AddString(fmt.Sprintf("b-%d", i))
	}
	// Overlap.
	for i := 0; i < 200; i++ {
		b.AddString(fmt.Sprintf("a-%d", i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	est := a.Estimate()
	if math.Abs(est-1000)/1000 > 0.1 {
		t.Errorf("merged estimate = %.0f, want ~1000", est)
	}
	c := NewHLL(9)
	if err := a.Merge(c); err == nil {
		t.Error("precision mismatch must error")
	}
}

func TestHLLPrecisionClamped(t *testing.T) {
	if got := len(NewHLL(1).regs); got != 16 {
		t.Errorf("p<4 should clamp to 16 regs, got %d", got)
	}
	if got := len(NewHLL(30).regs); got != 1<<16 {
		t.Errorf("p>16 should clamp, got %d", got)
	}
}

func TestHLLEmptyEstimate(t *testing.T) {
	h := NewHLL(10)
	if est := h.Estimate(); est != 0 {
		t.Errorf("empty estimate = %v", est)
	}
}
