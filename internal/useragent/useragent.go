// Package useragent models HTTP User-Agent strings as the paper uses
// them (Section 6.3): a relative measure of how many hosts sit behind
// the addresses of a /24 block, derived from a 1-in-4096 random sample
// of request headers. It includes a deterministic UA-string population
// model, the request sampler, and a HyperLogLog sketch for estimating
// unique-UA counts without storing the strings.
package useragent

import (
	"fmt"
	"math"
	"math/rand"

	"ipscope/internal/xrand"
)

// SampleRate is the paper's header-sampling rate: 1 out of 4K requests.
const SampleRate = 4096

// Class describes what kind of client population generates UA strings.
type Class uint8

// Client population classes with very different UA diversity.
const (
	ClassResidential Class = iota // a handful of devices per address
	ClassBot                      // one or very few UA strings, many requests
	ClassGateway                  // thousands of devices behind one block
	ClassEnterprise               // managed fleet: moderate diversity
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassResidential:
		return "residential"
	case ClassBot:
		return "bot"
	case ClassGateway:
		return "gateway"
	case ClassEnterprise:
		return "enterprise"
	}
	return "unknown"
}

var (
	browsers = []string{"Mozilla/5.0 (Windows NT 10.0; Win64; x64)", "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_11)", "Mozilla/5.0 (X11; Linux x86_64)", "Mozilla/5.0 (iPhone; CPU iPhone OS 9_3)", "Mozilla/5.0 (Linux; Android 6.0)"}
	engines  = []string{"AppleWebKit/537.36 (KHTML, like Gecko) Chrome/%d.0 Safari/537.36", "Gecko/20100101 Firefox/%d.0", "Version/9.0 Mobile/13E238 Safari/601.1"}
	apps     = []string{"com.example.news/%d CFNetwork/758", "WeatherApp/%d.2 (Android)", "Mapper/%d Dalvik/2.1", "ShopClient/%d.0 okhttp/3.2", "Stream/%d ExoPlayer"}
	bots     = []string{"ExampleBot/2.1 (+http://example.com/bot)", "crawler/1.0", "FeedFetcher-Example"}
)

// Device generates the UA strings of one device. A device has a base
// browser UA and a handful of app UAs (the paper notes smartphone apps
// inflate per-device UA diversity).
type Device struct {
	browser string
	apps    []string
}

// NewDevice derives a deterministic device from a seed.
func NewDevice(seed uint64) Device {
	r := rand.New(rand.NewSource(int64(xrand.Splitmix64(seed))))
	d := Device{
		browser: fmt.Sprintf("%s %s", browsers[r.Intn(len(browsers))],
			fmt.Sprintf(engines[r.Intn(len(engines))], 40+r.Intn(12))),
	}
	napps := r.Intn(4)
	for i := 0; i < napps; i++ {
		d.apps = append(d.apps, fmt.Sprintf(apps[r.Intn(len(apps))], 1+r.Intn(9)))
	}
	return d
}

// UA returns the User-Agent string for one request from this device.
// Most requests come from the browser; some from apps.
func (d Device) UA(r *rand.Rand) string {
	if len(d.apps) > 0 && r.Float64() < 0.3 {
		return d.apps[r.Intn(len(d.apps))]
	}
	return d.browser
}

// BotUA returns a deterministic bot UA string for a seed.
func BotUA(seed uint64) string {
	return bots[xrand.Splitmix64(seed)%uint64(len(bots))]
}

// Sampler implements the 1-in-SampleRate request sampling used by the
// data-collection pipeline. It is deterministic given its stream.
type Sampler struct {
	r    *rand.Rand
	rate int
}

// NewSampler returns a sampler taking one of every rate requests
// (rate <= 1 samples everything).
func NewSampler(seed uint64, rate int) *Sampler {
	if rate < 1 {
		rate = 1
	}
	return &Sampler{r: xrand.New(seed, "ua-sampler"), rate: rate}
}

// Sample reports whether one request should have its UA recorded.
func (s *Sampler) Sample() bool {
	return s.rate == 1 || s.r.Intn(s.rate) == 0
}

// SampleN returns how many of n requests get sampled (binomial draw,
// avoiding n iterations for large n).
func (s *Sampler) SampleN(n int) int {
	if s.rate == 1 {
		return n
	}
	p := 1.0 / float64(s.rate)
	mean := float64(n) * p
	if n > 10000 {
		// Normal approximation.
		v := mean + s.r.NormFloat64()*math.Sqrt(mean*(1-p))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	k := 0
	for i := 0; i < n; i++ {
		if s.Sample() {
			k++
		}
	}
	return k
}

// HLL is a HyperLogLog sketch for estimating the number of distinct
// UA strings observed per /24 block without storing them.
type HLL struct {
	p    uint8 // precision: m = 2^p registers
	regs []uint8
}

// NewHLL creates a sketch with 2^p registers. Valid p: 4..16.
func NewHLL(p uint8) *HLL {
	if p < 4 {
		p = 4
	}
	if p > 16 {
		p = 16
	}
	return &HLL{p: p, regs: make([]uint8, 1<<p)}
}

// AddString inserts a string into the sketch.
func (h *HLL) AddString(s string) {
	h.Add(hash64(s))
}

// Add inserts a pre-hashed item.
func (h *HLL) Add(x uint64) {
	idx := x >> (64 - h.p)
	rest := x<<h.p | 1<<(h.p-1) // ensure termination
	rho := uint8(1)
	for rest&(1<<63) == 0 {
		rho++
		rest <<= 1
	}
	if rho > h.regs[idx] {
		h.regs[idx] = rho
	}
}

// Precision returns the sketch's precision p (2^p registers).
func (h *HLL) Precision() uint8 { return h.p }

// Registers returns a copy of the register array, for serialization.
func (h *HLL) Registers() []uint8 { return append([]uint8(nil), h.regs...) }

// HLLFromRegisters reconstructs a sketch from a serialized register
// array; len(regs) must be 2^p.
func HLLFromRegisters(p uint8, regs []uint8) (*HLL, error) {
	if p < 4 || p > 16 {
		return nil, fmt.Errorf("useragent: invalid precision %d", p)
	}
	if len(regs) != 1<<p {
		return nil, fmt.Errorf("useragent: %d registers for precision %d (want %d)",
			len(regs), p, 1<<p)
	}
	return &HLL{p: p, regs: append([]uint8(nil), regs...)}, nil
}

// Merge folds o into h. Both sketches must share the same precision.
func (h *HLL) Merge(o *HLL) error {
	if h.p != o.p {
		return fmt.Errorf("useragent: precision mismatch %d != %d", h.p, o.p)
	}
	for i, v := range o.regs {
		if v > h.regs[i] {
			h.regs[i] = v
		}
	}
	return nil
}

// Estimate returns the estimated distinct count, with the standard
// small-range (linear counting) correction.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.regs))
	sum := 0.0
	zeros := 0
	for _, v := range h.regs {
		sum += 1 / float64(uint64(1)<<v)
		if v == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	switch len(h.regs) {
	case 16:
		alpha = 0.673
	case 32:
		alpha = 0.697
	case 64:
		alpha = 0.709
	}
	e := alpha * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return e
}

// hash64 is FNV-1a, sufficient and dependency-free for sketching.
func hash64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	// Finalize to improve low-bit diffusion for HLL register selection.
	return xrand.Splitmix64(h)
}
