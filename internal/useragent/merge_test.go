package useragent

import (
	"fmt"
	"testing"
)

// The cluster summary fold (internal/query's SummaryPartial) merges
// per-shard HLL sketches in whatever grouping the partition dictates
// and requires the result to be exact — identical registers no matter
// how the union is ordered or parenthesized, and identical to a sketch
// that saw the union stream directly. These tests pin that algebra.

// sketchOf builds a sketch over the given item streams.
func sketchOf(p uint8, streams ...[]string) *HLL {
	h := NewHLL(p)
	for _, s := range streams {
		for _, item := range s {
			h.AddString(item)
		}
	}
	return h
}

// items generates n distinct strings from a namespace.
func items(ns string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%d", ns, i)
	}
	return out
}

func regsEqual(a, b *HLL) bool {
	ra, rb := a.Registers(), b.Registers()
	if len(ra) != len(rb) {
		return false
	}
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}

func TestHLLMergeCommutative(t *testing.T) {
	// Overlapping streams: commutativity must hold with shared items.
	sa, sb := items("a", 500), append(items("a", 100), items("b", 400)...)
	ab := sketchOf(12, sa)
	ab.Merge(sketchOf(12, sb)) //nolint:errcheck
	ba := sketchOf(12, sb)
	ba.Merge(sketchOf(12, sa)) //nolint:errcheck
	if !regsEqual(ab, ba) {
		t.Fatal("Merge(a,b) != Merge(b,a)")
	}
	if ab.Estimate() != ba.Estimate() {
		t.Fatalf("estimates differ: %v vs %v", ab.Estimate(), ba.Estimate())
	}
}

func TestHLLMergeAssociative(t *testing.T) {
	sa, sb, sc := items("a", 300), items("b", 300), items("c", 300)
	// (a ∪ b) ∪ c
	left := sketchOf(12, sa)
	left.Merge(sketchOf(12, sb)) //nolint:errcheck
	left.Merge(sketchOf(12, sc)) //nolint:errcheck
	// a ∪ (b ∪ c)
	bc := sketchOf(12, sb)
	bc.Merge(sketchOf(12, sc)) //nolint:errcheck
	right := sketchOf(12, sa)
	right.Merge(bc) //nolint:errcheck
	if !regsEqual(left, right) {
		t.Fatal("Merge is not associative")
	}
}

func TestHLLMergeEqualsUnionStream(t *testing.T) {
	// The property the cross-shard summary fold relies on: merging
	// per-shard sketches is register-identical to one sketch that
	// observed the concatenated stream — for any number of shards and
	// with duplicated items across shards.
	all := items("ua", 2000)
	for _, shards := range []int{1, 2, 4, 7} {
		parts := make([][]string, shards)
		for i, item := range all {
			parts[i%shards] = append(parts[i%shards], item)
		}
		// Duplicate some items into every shard.
		for i := range parts {
			parts[i] = append(parts[i], all[:25]...)
		}
		merged := NewHLL(12)
		for _, part := range parts {
			if err := merged.Merge(sketchOf(12, part)); err != nil {
				t.Fatal(err)
			}
		}
		union := sketchOf(12, all)
		if !regsEqual(merged, union) {
			t.Fatalf("%d-shard merge differs from union-stream sketch", shards)
		}
		if merged.Estimate() != union.Estimate() {
			t.Fatalf("%d-shard merged estimate %v != union estimate %v",
				shards, merged.Estimate(), union.Estimate())
		}
	}
}

func TestHLLMergeIdempotent(t *testing.T) {
	a := sketchOf(12, items("a", 500))
	b := sketchOf(12, items("a", 500))
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !regsEqual(a, b) {
		t.Fatal("merging an identical sketch changed the registers")
	}
}

func TestHLLMergeIdentity(t *testing.T) {
	a := sketchOf(12, items("a", 500))
	before := sketchOf(12, items("a", 500))
	if err := a.Merge(NewHLL(12)); err != nil {
		t.Fatal(err)
	}
	if !regsEqual(a, before) {
		t.Fatal("merging an empty sketch changed the registers")
	}
}
