package bgp

import (
	"testing"

	"ipscope/internal/ipv4"
)

func buildLog() *ChangeLog {
	base := NewTable()
	base.Insert(mkRoute("10.0.0.0/16", 1))
	base.Insert(mkRoute("192.0.2.0/24", 2))
	l := NewChangeLog(base, 10)
	l.Record(3, Change{Kind: OriginChange, Prefix: ipv4.MustParsePrefix("192.0.2.0/24"), OldOrigin: 2, NewOrigin: 5})
	l.Record(5, Change{Kind: Announce, Prefix: ipv4.MustParsePrefix("203.0.113.0/24"), NewOrigin: 7})
	l.Record(8, Change{Kind: Withdraw, Prefix: ipv4.MustParsePrefix("10.0.0.0/16"), OldOrigin: 1})
	return l
}

func TestChangeLogChangesIn(t *testing.T) {
	l := buildLog()
	if got := l.ChangesIn(0, 2); len(got) != 0 {
		t.Errorf("(0,2] = %v", got)
	}
	if got := l.ChangesIn(2, 3); len(got) != 1 || got[0].Kind != OriginChange {
		t.Errorf("(2,3] = %v", got)
	}
	if got := l.ChangesIn(0, 9); len(got) != 3 {
		t.Errorf("full range = %v", got)
	}
	// Clamping.
	if got := l.ChangesIn(-5, 99); len(got) != 3 {
		t.Errorf("clamped = %v", got)
	}
	if l.NumDays() != 10 {
		t.Errorf("NumDays = %d", l.NumDays())
	}
	// Out-of-range record is dropped.
	l.Record(99, Change{Kind: Announce})
	if got := l.ChangesIn(-5, 1000); len(got) != 3 {
		t.Errorf("out-of-range record was kept")
	}
}

func TestChangeLogTouchedBlocks(t *testing.T) {
	l := buildLog()
	blocks := l.TouchedBlocks(2, 5)
	if len(blocks) != 2 {
		t.Fatalf("touched = %v", blocks)
	}
	if blocks[ipv4.MustParseAddr("192.0.2.0").Block()] != OriginChange {
		t.Error("origin change block missing")
	}
	if blocks[ipv4.MustParseAddr("203.0.113.0").Block()] != Announce {
		t.Error("announce block missing")
	}
	// Withdraw of the /16 covers 256 blocks.
	all := l.TouchedBlocks(0, 9)
	if len(all) != 2+256 {
		t.Errorf("full touched = %d", len(all))
	}
}

func TestChangeLogOriginChangePrecedence(t *testing.T) {
	base := NewTable()
	l := NewChangeLog(base, 5)
	p := ipv4.MustParsePrefix("198.51.100.0/24")
	l.Record(1, Change{Kind: Announce, Prefix: p, NewOrigin: 1})
	l.Record(2, Change{Kind: OriginChange, Prefix: p, OldOrigin: 1, NewOrigin: 2})
	got := l.TouchedBlocks(0, 4)
	if got[p.FirstBlock()] != OriginChange {
		t.Errorf("kind = %v, want origin-change", got[p.FirstBlock()])
	}
}

func TestChangeLogTableAt(t *testing.T) {
	l := buildLog()
	t2 := l.TableAt(2)
	if got := t2.OriginOf(ipv4.MustParseAddr("192.0.2.1")); got != 2 {
		t.Errorf("day 2 origin = %v", got)
	}
	t4 := l.TableAt(4)
	if got := t4.OriginOf(ipv4.MustParseAddr("192.0.2.1")); got != 5 {
		t.Errorf("day 4 origin = %v", got)
	}
	t9 := l.TableAt(9)
	if got := t9.OriginOf(ipv4.MustParseAddr("10.0.5.5")); got != 0 {
		t.Errorf("withdrawn prefix still routed: %v", got)
	}
	if got := t9.OriginOf(ipv4.MustParseAddr("203.0.113.9")); got != 7 {
		t.Errorf("announced prefix missing: %v", got)
	}
	// Past-the-end clamps.
	if got := l.TableAt(500).OriginOf(ipv4.MustParseAddr("203.0.113.9")); got != 7 {
		t.Errorf("clamped TableAt wrong: %v", got)
	}
}

func TestChangeLogCountsByKind(t *testing.T) {
	l := buildLog()
	c := l.CountsByKind(0, 9)
	if c[Announce] != 1 || c[Withdraw] != 1 || c[OriginChange] != 1 {
		t.Errorf("counts = %v", c)
	}
}
