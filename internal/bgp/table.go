// Package bgp models the parts of global routing the paper's analysis
// needs: daily routing-table snapshots (as from a RouteViews collector),
// longest-prefix-match lookup from IP address to origin AS, diffing of
// snapshots into announce/withdraw/origin-change events, and
// majority-vote IP-to-AS attribution over a window of days (Section 4.2,
// footnote 6).
package bgp

import (
	"fmt"
	"sort"

	"ipscope/internal/ipv4"
)

// ASN is an Autonomous System number.
type ASN uint32

// String formats the ASN in canonical "AS64500" form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// Route is one routing-table entry.
type Route struct {
	Prefix ipv4.Prefix
	Origin ASN
}

// Table is a longest-prefix-match routing table built on a binary trie.
// The zero value is an empty table ready for use via Insert.
type Table struct {
	root *node
	n    int
}

type node struct {
	child [2]*node
	route *Route // non-nil if a route terminates here
}

// NewTable returns an empty routing table.
func NewTable() *Table { return &Table{} }

// Len returns the number of routes in the table.
func (t *Table) Len() int { return t.n }

// Insert adds or replaces the route for r.Prefix.
func (t *Table) Insert(r Route) {
	if t.root == nil {
		t.root = &node{}
	}
	cur := t.root
	a := uint32(r.Prefix.Addr())
	for i := 0; i < r.Prefix.Bits(); i++ {
		b := (a >> (31 - uint(i))) & 1
		if cur.child[b] == nil {
			cur.child[b] = &node{}
		}
		cur = cur.child[b]
	}
	if cur.route == nil {
		t.n++
	}
	rc := r
	cur.route = &rc
}

// Remove deletes the route for p, reporting whether it was present.
// Trie nodes are not pruned; tables are rebuilt per snapshot in practice.
func (t *Table) Remove(p ipv4.Prefix) bool {
	cur := t.root
	a := uint32(p.Addr())
	for i := 0; i < p.Bits() && cur != nil; i++ {
		cur = cur.child[(a>>(31-uint(i)))&1]
	}
	if cur == nil || cur.route == nil {
		return false
	}
	cur.route = nil
	t.n--
	return true
}

// Lookup returns the longest-prefix-match route for addr.
func (t *Table) Lookup(addr ipv4.Addr) (Route, bool) {
	cur := t.root
	var best *Route
	a := uint32(addr)
	for i := 0; cur != nil; i++ {
		if cur.route != nil {
			best = cur.route
		}
		if i == 32 {
			break
		}
		cur = cur.child[(a>>(31-uint(i)))&1]
	}
	if best == nil {
		return Route{}, false
	}
	return *best, true
}

// OriginOf returns the origin AS for addr, or 0 if unrouted.
func (t *Table) OriginOf(addr ipv4.Addr) ASN {
	if r, ok := t.Lookup(addr); ok {
		return r.Origin
	}
	return 0
}

// Exact returns the route exactly matching prefix p, if any.
func (t *Table) Exact(p ipv4.Prefix) (Route, bool) {
	cur := t.root
	a := uint32(p.Addr())
	for i := 0; i < p.Bits() && cur != nil; i++ {
		cur = cur.child[(a>>(31-uint(i)))&1]
	}
	if cur == nil || cur.route == nil {
		return Route{}, false
	}
	return *cur.route, true
}

// Routes returns all routes sorted by (address, length).
func (t *Table) Routes() []Route {
	var out []Route
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.route != nil {
			out = append(out, *n.route)
		}
		walk(n.child[0])
		walk(n.child[1])
	}
	walk(t.root)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix.Addr() != out[j].Prefix.Addr() {
			return out[i].Prefix.Addr() < out[j].Prefix.Addr()
		}
		return out[i].Prefix.Bits() < out[j].Prefix.Bits()
	})
	return out
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := NewTable()
	for _, r := range t.Routes() {
		out.Insert(r)
	}
	return out
}

// LinearTable is a reference longest-prefix-match implementation used to
// cross-check the trie in tests and as the baseline in the LPM ablation
// benchmark.
type LinearTable struct {
	routes []Route
}

// NewLinearTable builds a linear-scan table over routes.
func NewLinearTable(routes []Route) *LinearTable {
	return &LinearTable{routes: append([]Route(nil), routes...)}
}

// Lookup returns the longest matching route by scanning every entry.
func (t *LinearTable) Lookup(addr ipv4.Addr) (Route, bool) {
	best := -1
	for i, r := range t.routes {
		if r.Prefix.Contains(addr) {
			if best < 0 || r.Prefix.Bits() > t.routes[best].Prefix.Bits() {
				best = i
			}
		}
	}
	if best < 0 {
		return Route{}, false
	}
	return t.routes[best], true
}
