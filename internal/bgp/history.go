package bgp

import (
	"fmt"
	"sort"

	"ipscope/internal/ipv4"
)

// ChangeKind classifies a routing change between two snapshots.
type ChangeKind uint8

// The change kinds considered "BGP change events" in Section 4.2.
const (
	Announce     ChangeKind = iota // prefix newly announced
	Withdraw                       // prefix withdrawn
	OriginChange                   // same prefix, different origin AS
)

// String returns the change kind name.
func (k ChangeKind) String() string {
	switch k {
	case Announce:
		return "announce"
	case Withdraw:
		return "withdraw"
	case OriginChange:
		return "origin-change"
	}
	return "unknown"
}

// Change is one routing change between two snapshots.
type Change struct {
	Kind      ChangeKind
	Prefix    ipv4.Prefix
	OldOrigin ASN // zero for Announce
	NewOrigin ASN // zero for Withdraw
}

// Diff computes the changes from table a to table b.
func Diff(a, b *Table) []Change {
	var out []Change
	ra, rb := a.Routes(), b.Routes()
	seen := make(map[ipv4.Prefix]Route, len(ra))
	for _, r := range ra {
		seen[r.Prefix] = r
	}
	for _, r := range rb {
		old, ok := seen[r.Prefix]
		if !ok {
			out = append(out, Change{Kind: Announce, Prefix: r.Prefix, NewOrigin: r.Origin})
			continue
		}
		if old.Origin != r.Origin {
			out = append(out, Change{Kind: OriginChange, Prefix: r.Prefix,
				OldOrigin: old.Origin, NewOrigin: r.Origin})
		}
		delete(seen, r.Prefix)
	}
	for _, r := range ra {
		if _, still := seen[r.Prefix]; still {
			out = append(out, Change{Kind: Withdraw, Prefix: r.Prefix, OldOrigin: r.Origin})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix.Addr() != out[j].Prefix.Addr() {
			return out[i].Prefix.Addr() < out[j].Prefix.Addr()
		}
		return out[i].Prefix.Bits() < out[j].Prefix.Bits()
	})
	return out
}

// History is a sequence of daily routing-table snapshots, as collected
// from a RouteViews-style vantage point.
type History struct {
	days []*Table
}

// NewHistory returns an empty history.
func NewHistory() *History { return &History{} }

// Append adds the snapshot for the next day.
func (h *History) Append(t *Table) { h.days = append(h.days, t) }

// NumDays returns the number of snapshots.
func (h *History) NumDays() int { return len(h.days) }

// Day returns the snapshot for day d (0-based).
func (h *History) Day(d int) *Table {
	if d < 0 || d >= len(h.days) {
		return nil
	}
	return h.days[d]
}

// MajorityOrigin determines the origin AS for addr over days [from, to]
// by majority vote of the daily longest-prefix-match results, following
// the paper's footnote 6. Unrouted days vote for AS 0. Ties resolve to
// the lower ASN for determinism.
func (h *History) MajorityOrigin(addr ipv4.Addr, from, to int) ASN {
	if from < 0 {
		from = 0
	}
	if to >= len(h.days) {
		to = len(h.days) - 1
	}
	votes := make(map[ASN]int)
	for d := from; d <= to; d++ {
		votes[h.days[d].OriginOf(addr)]++
	}
	var best ASN
	bestN := -1
	for as, n := range votes {
		if n > bestN || (n == bestN && as < best) {
			best, bestN = as, n
		}
	}
	return best
}

// ChangedBlocks returns, for the transition between days from and to,
// the set of /24 blocks covered by any change event, together with the
// change counts by kind. Analyses use this to test whether an address's
// up/down event "goes together with a BGP change" (Figure 5c).
func (h *History) ChangedBlocks(from, to int) (map[ipv4.Block]ChangeKind, map[ChangeKind]int) {
	blocks := make(map[ipv4.Block]ChangeKind)
	counts := make(map[ChangeKind]int)
	if from < 0 || to >= len(h.days) || from >= to {
		return blocks, counts
	}
	// Accumulate changes across every consecutive day pair in (from, to].
	for d := from; d < to; d++ {
		for _, c := range Diff(h.days[d], h.days[d+1]) {
			counts[c.Kind]++
			c.Prefix.Blocks(func(b ipv4.Block) {
				// Origin changes dominate announce/withdraw for
				// reporting (Table 2 separates them); keep the
				// first recorded kind otherwise.
				if _, ok := blocks[b]; !ok || c.Kind == OriginChange {
					blocks[b] = c.Kind
				}
			})
		}
	}
	return blocks, counts
}

// Validate checks internal consistency: every snapshot non-nil.
func (h *History) Validate() error {
	for i, d := range h.days {
		if d == nil {
			return fmt.Errorf("bgp: nil snapshot at day %d", i)
		}
	}
	return nil
}
