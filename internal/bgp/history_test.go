package bgp

import (
	"testing"

	"ipscope/internal/ipv4"
)

func TestDiff(t *testing.T) {
	a := NewTable()
	a.Insert(mkRoute("10.0.0.0/8", 1))
	a.Insert(mkRoute("192.0.2.0/24", 2))
	a.Insert(mkRoute("198.51.100.0/24", 3))

	b := NewTable()
	b.Insert(mkRoute("10.0.0.0/8", 1))     // unchanged
	b.Insert(mkRoute("192.0.2.0/24", 9))   // origin change
	b.Insert(mkRoute("203.0.113.0/24", 4)) // announce
	// 198.51.100.0/24 withdrawn

	changes := Diff(a, b)
	if len(changes) != 3 {
		t.Fatalf("got %d changes: %v", len(changes), changes)
	}
	kinds := map[ChangeKind]int{}
	for _, c := range changes {
		kinds[c.Kind]++
		switch c.Kind {
		case OriginChange:
			if c.OldOrigin != 2 || c.NewOrigin != 9 {
				t.Errorf("origin change %+v", c)
			}
		case Announce:
			if c.NewOrigin != 4 || c.OldOrigin != 0 {
				t.Errorf("announce %+v", c)
			}
		case Withdraw:
			if c.OldOrigin != 3 || c.NewOrigin != 0 {
				t.Errorf("withdraw %+v", c)
			}
		}
	}
	if kinds[Announce] != 1 || kinds[Withdraw] != 1 || kinds[OriginChange] != 1 {
		t.Errorf("kind counts %v", kinds)
	}
}

func TestDiffEmpty(t *testing.T) {
	a := NewTable()
	a.Insert(mkRoute("10.0.0.0/8", 1))
	if got := Diff(a, a.Clone()); len(got) != 0 {
		t.Fatalf("self diff = %v", got)
	}
}

func TestChangeKindString(t *testing.T) {
	for k, want := range map[ChangeKind]string{
		Announce: "announce", Withdraw: "withdraw",
		OriginChange: "origin-change", ChangeKind(99): "unknown",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestHistoryMajorityOrigin(t *testing.T) {
	h := NewHistory()
	for day := 0; day < 5; day++ {
		tbl := NewTable()
		if day < 2 {
			tbl.Insert(mkRoute("10.0.0.0/8", 100))
		} else {
			tbl.Insert(mkRoute("10.0.0.0/8", 200))
		}
		h.Append(tbl)
	}
	addr := ipv4.MustParseAddr("10.1.2.3")
	if got := h.MajorityOrigin(addr, 0, 4); got != 200 {
		t.Errorf("majority over all days = %v, want 200", got)
	}
	if got := h.MajorityOrigin(addr, 0, 1); got != 100 {
		t.Errorf("majority over first days = %v, want 100", got)
	}
	// Out-of-range clamping.
	if got := h.MajorityOrigin(addr, -3, 99); got != 200 {
		t.Errorf("clamped majority = %v", got)
	}
	if h.NumDays() != 5 {
		t.Errorf("NumDays = %d", h.NumDays())
	}
	if h.Day(0) == nil || h.Day(9) != nil || h.Day(-1) != nil {
		t.Error("Day bounds handling wrong")
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestHistoryMajorityTieBreaksLow(t *testing.T) {
	h := NewHistory()
	t1 := NewTable()
	t1.Insert(mkRoute("10.0.0.0/8", 300))
	t2 := NewTable()
	t2.Insert(mkRoute("10.0.0.0/8", 100))
	h.Append(t1)
	h.Append(t2)
	if got := h.MajorityOrigin(ipv4.MustParseAddr("10.0.0.1"), 0, 1); got != 100 {
		t.Errorf("tie should resolve to lower ASN, got %v", got)
	}
}

func TestChangedBlocks(t *testing.T) {
	h := NewHistory()
	t0 := NewTable()
	t0.Insert(mkRoute("10.0.0.0/23", 1))
	t0.Insert(mkRoute("192.0.2.0/24", 2))
	h.Append(t0)

	t1 := t0.Clone()
	t1.Remove(ipv4.MustParsePrefix("10.0.0.0/23"))
	t1.Insert(mkRoute("10.0.0.0/23", 7)) // origin change over 2 blocks
	t1.Insert(mkRoute("203.0.113.0/24", 3))
	h.Append(t1)

	blocks, counts := h.ChangedBlocks(0, 1)
	if counts[OriginChange] != 1 || counts[Announce] != 1 {
		t.Errorf("counts = %v", counts)
	}
	// /23 covers two /24 blocks plus the announced /24 = 3 blocks.
	if len(blocks) != 3 {
		t.Errorf("changed blocks = %d: %v", len(blocks), blocks)
	}
	if k, ok := blocks[ipv4.MustParseAddr("10.0.1.0").Block()]; !ok || k != OriginChange {
		t.Errorf("10.0.1/24 kind = %v ok=%v", k, ok)
	}
	if k := blocks[ipv4.MustParseAddr("203.0.113.0").Block()]; k != Announce {
		t.Errorf("announce kind = %v", k)
	}
	// Unchanged block must be absent.
	if _, ok := blocks[ipv4.MustParseAddr("192.0.2.0").Block()]; ok {
		t.Error("stable block flagged as changed")
	}
	// Degenerate windows.
	if b, c := h.ChangedBlocks(1, 1); len(b) != 0 || len(c) != 0 {
		t.Error("same-day window should be empty")
	}
	if b, _ := h.ChangedBlocks(0, 99); len(b) != 0 {
		t.Error("out-of-range window should be empty")
	}
}
