package bgp

import "ipscope/internal/ipv4"

// ChangeLog is a compact representation of a year of routing history:
// a base table plus the list of changes that took effect at the start
// of each day. It answers the questions the churn analyses ask —
// "did any BGP change touch this block within a window of days?" —
// without materializing hundreds of full snapshots.
type ChangeLog struct {
	Base *Table
	// DayChanges[d] holds the changes applied at the start of day d.
	// DayChanges[0] is empty by construction.
	DayChanges [][]Change
}

// NewChangeLog creates a change log over base with capacity for days.
func NewChangeLog(base *Table, days int) *ChangeLog {
	return &ChangeLog{Base: base, DayChanges: make([][]Change, days)}
}

// NumDays returns the number of days covered.
func (l *ChangeLog) NumDays() int { return len(l.DayChanges) }

// Record appends a change taking effect at the start of day d.
func (l *ChangeLog) Record(d int, c Change) {
	if d < 0 || d >= len(l.DayChanges) {
		return
	}
	l.DayChanges[d] = append(l.DayChanges[d], c)
}

// ChangesIn returns all changes with effect day in (from, to].
func (l *ChangeLog) ChangesIn(from, to int) []Change {
	var out []Change
	if from < 0 {
		from = -1
	}
	if to >= len(l.DayChanges) {
		to = len(l.DayChanges) - 1
	}
	for d := from + 1; d <= to; d++ {
		out = append(out, l.DayChanges[d]...)
	}
	return out
}

// TouchedBlocks returns the /24 blocks covered by any change in
// (from, to], mapped to a representative change kind (origin changes
// take precedence, mirroring Table 2's classification priority).
func (l *ChangeLog) TouchedBlocks(from, to int) map[ipv4.Block]ChangeKind {
	out := make(map[ipv4.Block]ChangeKind)
	for _, c := range l.ChangesIn(from, to) {
		kind := c.Kind
		c.Prefix.Blocks(func(b ipv4.Block) {
			if prev, ok := out[b]; !ok || (prev != OriginChange && kind == OriginChange) {
				out[b] = kind
			}
		})
	}
	return out
}

// TableAt reconstructs the routing table in effect during day d by
// replaying changes onto a clone of the base table. Intended for tests
// and spot checks, not for per-day iteration at scale.
func (l *ChangeLog) TableAt(d int) *Table {
	t := l.Base.Clone()
	if d >= len(l.DayChanges) {
		d = len(l.DayChanges) - 1
	}
	for day := 0; day <= d; day++ {
		for _, c := range l.DayChanges[day] {
			switch c.Kind {
			case Announce, OriginChange:
				t.Insert(Route{Prefix: c.Prefix, Origin: c.NewOrigin})
			case Withdraw:
				t.Remove(c.Prefix)
			}
		}
	}
	return t
}

// CountsByKind tallies changes in (from, to] by kind.
func (l *ChangeLog) CountsByKind(from, to int) map[ChangeKind]int {
	out := make(map[ChangeKind]int)
	for _, c := range l.ChangesIn(from, to) {
		out[c.Kind]++
	}
	return out
}
