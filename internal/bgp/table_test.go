package bgp

import (
	"math/rand"
	"testing"

	"ipscope/internal/ipv4"
)

func mkRoute(p string, as ASN) Route {
	return Route{Prefix: ipv4.MustParsePrefix(p), Origin: as}
}

func TestTableLookupLongestMatch(t *testing.T) {
	tbl := NewTable()
	tbl.Insert(mkRoute("10.0.0.0/8", 100))
	tbl.Insert(mkRoute("10.1.0.0/16", 200))
	tbl.Insert(mkRoute("10.1.2.0/24", 300))

	cases := []struct {
		addr string
		want ASN
	}{
		{"10.1.2.3", 300},
		{"10.1.3.4", 200},
		{"10.2.0.1", 100},
		{"11.0.0.1", 0},
	}
	for _, c := range cases {
		got := tbl.OriginOf(ipv4.MustParseAddr(c.addr))
		if got != c.want {
			t.Errorf("OriginOf(%s) = %v, want AS%d", c.addr, got, c.want)
		}
	}
	if tbl.Len() != 3 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestTableDefaultRoute(t *testing.T) {
	tbl := NewTable()
	tbl.Insert(mkRoute("0.0.0.0/0", 1))
	if got := tbl.OriginOf(ipv4.MustParseAddr("203.0.113.9")); got != 1 {
		t.Errorf("default route not matched: %v", got)
	}
}

func TestTableInsertReplaces(t *testing.T) {
	tbl := NewTable()
	tbl.Insert(mkRoute("10.0.0.0/8", 1))
	tbl.Insert(mkRoute("10.0.0.0/8", 2))
	if tbl.Len() != 1 {
		t.Errorf("replace changed Len to %d", tbl.Len())
	}
	if got := tbl.OriginOf(ipv4.MustParseAddr("10.0.0.1")); got != 2 {
		t.Errorf("replace not applied: %v", got)
	}
}

func TestTableRemoveAndExact(t *testing.T) {
	tbl := NewTable()
	tbl.Insert(mkRoute("10.0.0.0/8", 1))
	tbl.Insert(mkRoute("10.1.0.0/16", 2))
	if r, ok := tbl.Exact(ipv4.MustParsePrefix("10.1.0.0/16")); !ok || r.Origin != 2 {
		t.Fatal("Exact failed")
	}
	if _, ok := tbl.Exact(ipv4.MustParsePrefix("10.1.0.0/17")); ok {
		t.Fatal("Exact matched absent prefix")
	}
	if !tbl.Remove(ipv4.MustParsePrefix("10.1.0.0/16")) {
		t.Fatal("Remove returned false")
	}
	if tbl.Remove(ipv4.MustParsePrefix("10.1.0.0/16")) {
		t.Fatal("double Remove returned true")
	}
	if got := tbl.OriginOf(ipv4.MustParseAddr("10.1.0.1")); got != 1 {
		t.Errorf("after removal lookup = %v, want covering /8", got)
	}
	if tbl.Len() != 1 {
		t.Errorf("Len after removal = %d", tbl.Len())
	}
}

func TestTableRoutesSortedAndClone(t *testing.T) {
	tbl := NewTable()
	tbl.Insert(mkRoute("192.0.2.0/24", 3))
	tbl.Insert(mkRoute("10.0.0.0/8", 1))
	tbl.Insert(mkRoute("10.0.0.0/16", 2))
	rs := tbl.Routes()
	if len(rs) != 3 {
		t.Fatalf("Routes len = %d", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		a, b := rs[i-1], rs[i]
		if a.Prefix.Addr() > b.Prefix.Addr() ||
			(a.Prefix.Addr() == b.Prefix.Addr() && a.Prefix.Bits() >= b.Prefix.Bits()) {
			t.Fatalf("routes not sorted: %v", rs)
		}
	}
	cl := tbl.Clone()
	cl.Insert(mkRoute("203.0.113.0/24", 9))
	if tbl.Len() == cl.Len() {
		t.Error("clone not independent")
	}
}

// TestTrieMatchesLinear cross-checks the trie against the reference
// linear implementation on random tables and probes.
func TestTrieMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		var routes []Route
		trie := NewTable()
		for i := 0; i < 200; i++ {
			bits := 8 + rng.Intn(17) // /8../24
			addr := ipv4.Addr(rng.Uint32())
			p, _ := ipv4.NewPrefix(addr, bits)
			r := Route{Prefix: p, Origin: ASN(rng.Intn(1000) + 1)}
			routes = append(routes, r)
			trie.Insert(r)
		}
		// Deduplicate same-prefix routes the way the trie does
		// (last insert wins) for the linear reference.
		byPrefix := make(map[ipv4.Prefix]Route)
		for _, r := range routes {
			byPrefix[r.Prefix] = r
		}
		var dedup []Route
		for _, r := range byPrefix {
			dedup = append(dedup, r)
		}
		lin := NewLinearTable(dedup)
		for probe := 0; probe < 500; probe++ {
			addr := ipv4.Addr(rng.Uint32())
			tr, tok := trie.Lookup(addr)
			lr, lok := lin.Lookup(addr)
			if tok != lok {
				t.Fatalf("presence mismatch for %v: trie=%v linear=%v", addr, tok, lok)
			}
			if tok && tr.Prefix.Bits() != lr.Prefix.Bits() {
				t.Fatalf("length mismatch for %v: trie=%v linear=%v", addr, tr.Prefix, lr.Prefix)
			}
		}
	}
}

func TestASNString(t *testing.T) {
	if ASN(64500).String() != "AS64500" {
		t.Errorf("ASN.String = %q", ASN(64500).String())
	}
}
