// Quickstart: generate a small synthetic Internet, simulate a month of
// address activity, and compute the paper's two block metrics —
// filling degree (FD) and spatio-temporal utilization (STU) — for a
// handful of /24 blocks, classifying their assignment practice.
package main

import (
	"fmt"

	"ipscope/internal/core"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
	"ipscope/internal/textplot"
)

func main() {
	// A tiny world: 40 ASes, a few hundred /24 blocks.
	world := synthnet.Generate(synthnet.Config{Seed: 7, NumASes: 40, MeanBlocksPerAS: 8})

	// Simulate 8 weeks; keep daily resolution for the last 4.
	cfg := sim.TinyConfig()
	res := sim.Run(world, cfg)

	fmt.Printf("world: %d ASes, %d /24 blocks\n", len(world.ASes), world.NumBlocks())
	fmt.Printf("daily active addresses (first day): %d\n\n", res.Daily[0].Len())

	// Compute FD and STU for the first few active blocks and guess the
	// assignment practice from the metrics alone.
	shown := 0
	for _, blk := range core.ActiveBlocks(res.Daily) {
		fd := core.FillingDegree(res.Daily, blk)
		stu := core.STU(res.Daily, blk)
		truth := "?"
		if info, ok := world.BlockInfo(blk); ok {
			truth = info.Policy.String()
		}
		guess := classify(fd, stu)
		fmt.Printf("%-18v FD=%3d STU=%.2f  guess=%-14s truth=%s\n",
			blk, fd, stu, guess, truth)
		shown++
		if shown == 8 {
			break
		}
	}

	// Render one activity matrix, Figure-6 style.
	blk := core.ActiveBlocks(res.Daily)[0]
	fmt.Println()
	fmt.Print(textplot.ActivityMatrix(
		fmt.Sprintf("activity matrix for %v", blk),
		core.BlockDailyBitmaps(res.Daily, blk), 16))
}

// classify applies the paper's Section 5.3 heuristics: cycling pools
// fill the /24 (FD>250); sparse blocks with low STU look static.
func classify(fd int, stu float64) string {
	switch {
	case fd > 250 && stu > 0.6:
		return "dynamic-24h"
	case fd > 250:
		return "dynamic-pool"
	case fd < 64 && stu < 0.2:
		return "static-sparse"
	default:
		return "mixed/other"
	}
}
