// Log pipeline: the collection substrate end to end, at both tiers.
//
// Tier 1 (cdnlog): a fleet of edge servers observes a simulated week of
// client requests and ships per-address aggregates to a TCP collector,
// which rebuilds the active-address sets — the paper's "distributed
// data collection framework" at planetary scale.
//
// Tier 2 (obs): the same simulation simultaneously streams its typed
// observation dataset through the obs codec — the pipeline behind
// ipscope-gen | ipscope-collect | ipscope-report — and the decoded
// dataset must match the simulator's ground truth exactly.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"sync"

	"ipscope/internal/cdnlog"
	"ipscope/internal/ipv4"
	"ipscope/internal/obs"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

func main() {
	const days = 7
	world := synthnet.Generate(synthnet.Config{Seed: 3, NumASes: 50, MeanBlocksPerAS: 8})
	cfg := sim.DefaultConfig()
	cfg.Days = days
	cfg.DailyStart, cfg.DailyLen = 0, days

	// Tier 2 sink: stream the observation dataset while simulating.
	var stream bytes.Buffer
	writer := obs.NewWriter(&stream)
	res, err := sim.RunTo(world, cfg, writer)
	if err != nil {
		log.Fatal(err)
	}
	if err := writer.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("obs dataset streamed: %d bytes\n", stream.Len())

	// Start the collector on an ephemeral local port.
	agg := cdnlog.NewAggregator(days)
	col := cdnlog.NewCollector(agg)
	col.OnError = func(err error) { log.Printf("collector error: %v", err) }
	addr, err := col.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collector on %s\n", addr)

	// Eight edges, each owning a shard of the client space.
	const edges = 8
	var wg sync.WaitGroup
	for e := 0; e < edges; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			edge, err := cdnlog.DialEdge(context.Background(), addr.String())
			if err != nil {
				log.Printf("edge %d: %v", e, err)
				return
			}
			defer edge.Close()
			sent := 0
			for day, set := range res.Daily {
				set.ForEach(func(a ipv4.Addr) {
					if int(uint32(a)>>8)%edges != e {
						return
					}
					if err := edge.Log(cdnlog.Record{Addr: a, Day: uint32(day), Hits: 1}); err != nil {
						log.Printf("edge %d: %v", e, err)
						return
					}
					sent++
				})
			}
			fmt.Printf("edge %d shipped %d records\n", e, sent)
		}(e)
	}
	wg.Wait()
	if err := col.Close(); err != nil {
		log.Fatal(err)
	}

	// Both tiers' views must match the simulator's ground truth.
	dataset, err := obs.Decode(&stream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncollector saw %d unique addresses\n", agg.UniqueAddrs())
	fmt.Printf("decoded dataset: %d daily snapshots (world seed %d)\n",
		len(dataset.Daily), dataset.Meta.World.Seed)
	for d := 0; d < days; d++ {
		truth := res.Daily[d].Len()
		collected := agg.Day(d).Len()
		marker := "ok"
		if collected != truth || !dataset.Daily[d].Equal(res.Daily[d]) {
			marker = "MISMATCH"
		}
		fmt.Printf("day %d: collected %6d, dataset %6d, simulated %6d  [%s]\n",
			d, collected, dataset.Daily[d].Len(), truth, marker)
	}
}
