// Log pipeline: the collection substrate end to end. A fleet of edge
// servers observes a simulated day of client requests and ships
// per-address aggregates to a TCP collector, which rebuilds the
// active-address sets — the same path the paper's "distributed data
// collection framework" implements at planetary scale.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"ipscope/internal/cdnlog"
	"ipscope/internal/ipv4"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

func main() {
	const days = 7
	world := synthnet.Generate(synthnet.Config{Seed: 3, NumASes: 50, MeanBlocksPerAS: 8})
	cfg := sim.DefaultConfig()
	cfg.Days = days
	cfg.DailyStart, cfg.DailyLen = 0, days
	res := sim.Run(world, cfg)

	// Start the collector on an ephemeral local port.
	agg := cdnlog.NewAggregator(days)
	col := cdnlog.NewCollector(agg)
	addr, err := col.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collector on %s\n", addr)

	// Eight edges, each owning a shard of the client space.
	const edges = 8
	var wg sync.WaitGroup
	for e := 0; e < edges; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			edge, err := cdnlog.DialEdge(context.Background(), addr.String())
			if err != nil {
				log.Printf("edge %d: %v", e, err)
				return
			}
			defer edge.Close()
			sent := 0
			for day, set := range res.Daily {
				set.ForEach(func(a ipv4.Addr) {
					if int(uint32(a)>>8)%edges != e {
						return
					}
					if err := edge.Log(cdnlog.Record{Addr: a, Day: uint32(day), Hits: 1}); err != nil {
						log.Printf("edge %d: %v", e, err)
						return
					}
					sent++
				})
			}
			fmt.Printf("edge %d shipped %d records\n", e, sent)
		}(e)
	}
	wg.Wait()
	if err := col.Close(); err != nil {
		log.Fatal(err)
	}

	// The collector's view must match the simulator's ground truth.
	fmt.Printf("\ncollector saw %d unique addresses\n", agg.UniqueAddrs())
	for d := 0; d < days; d++ {
		truth := res.Daily[d].Len()
		got := agg.Day(d).Len()
		marker := "ok"
		if got != truth {
			marker = "MISMATCH"
		}
		fmt.Printf("day %d: collected %6d, simulated %6d  [%s]\n", d, got, truth, marker)
	}
}
