// Scanner gap: Section 3's comparison of passive (CDN) and active
// (ICMP) visibility, plus a capture–recapture estimate of the active
// population — the analysis behind "active measurement campaigns miss
// up to 40% of the hosts".
package main

import (
	"fmt"

	"ipscope/internal/core"
	"ipscope/internal/scan"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

func main() {
	world := synthnet.Generate(synthnet.Config{Seed: 33, NumASes: 120, MeanBlocksPerAS: 10})
	res := sim.Run(world, sim.DefaultConfig())
	campaign := scan.FromObs(&res.Data)

	cdn := res.DailyWindowUnion()
	icmp := campaign.ICMP

	// Visibility at four granularities (Figure 2a).
	fmt.Println("== visibility: CDN vs ICMP ==")
	levels := []struct {
		name string
		v    core.Visibility
	}{
		{"IPs", core.CompareIPs(cdn, icmp)},
		{"/24s", core.CompareBlocks(cdn, icmp)},
		{"prefixes", core.CompareGrouped(cdn, icmp, core.PrefixGrouper(world.BaseRouting))},
		{"ASes", core.CompareGrouped(cdn, icmp, core.ASGrouper(world.BaseRouting))},
	}
	for _, l := range levels {
		fmt.Printf("%-9s N=%-8d CDN-only %5.1f%%  both %5.1f%%  ICMP-only %5.1f%%\n",
			l.name, l.v.Total(),
			100*l.v.FractionOnlyA(),
			100*float64(l.v.Both)/float64(l.v.Total()),
			100*l.v.FractionOnlyB())
	}

	// What is ICMP seeing that the CDN is not? (Figure 2b)
	fmt.Println("\n== ICMP-only addresses ==")
	classes := core.ClassifyICMPOnly(icmp.Diff(cdn), campaign.Servers, campaign.Routers)
	for _, c := range []core.ICMPOnlyClass{core.ClassServer, core.ClassServerRouter, core.ClassRouter, core.ClassUnknown} {
		fmt.Printf("%-14s %d\n", c, classes[c])
	}

	// A fresh scan with the ZMap-style permutation, for demonstration.
	targets := scan.Targets(world)
	rescanned, err := scan.Scan(scan.SetResponder{Set: icmp}, targets, 99)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nrescan of %d prefixes found %d responders (campaign union: %d)\n",
		len(targets), rescanned.Len(), icmp.Len())

	// Capture–recapture: how many actives do both channels miss?
	est, err := core.RecaptureSets(cdn, icmp)
	if err != nil {
		fmt.Println("recapture:", err)
		return
	}
	fmt.Println("\n== capture-recapture ==")
	fmt.Printf("CDN %d, ICMP %d, overlap %d\n", est.N1, est.N2, est.Both)
	fmt.Printf("estimated active population: %.0f (95%% CI %.0f..%.0f)\n",
		est.Chapman, est.CI95Lo, est.CI95Hi)
	fmt.Printf("estimated invisible to both: %.0f\n", est.InvisibleEstimate())
}
