// Churn audit: the network-operator / registry view of Section 4.
// Simulates a year of activity, then reports address churn at several
// aggregation windows, per-AS churn medians, up-event sizes and how
// much of the churn is visible in BGP — the analysis an RIR or ISP
// would run to understand utilization dynamics in its region.
package main

import (
	"fmt"
	"sort"

	"ipscope/internal/core"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

func main() {
	world := synthnet.Generate(synthnet.Config{Seed: 21, NumASes: 120, MeanBlocksPerAS: 10})
	cfg := sim.DefaultConfig()
	cfg.Days = 112
	cfg.DailyStart, cfg.DailyLen = 0, 112
	res := sim.Run(world, cfg)

	// 1. Churn by window size: does it decay with aggregation?
	fmt.Println("== churn vs aggregation window ==")
	for _, wc := range core.ChurnByWindow(res.Daily, []int{1, 7, 14, 28}) {
		fmt.Printf("%3d-day windows: up %% median %.1f (min %.1f, max %.1f)\n",
			wc.WindowDays, wc.Up.Median, wc.Up.Min, wc.Up.Max)
	}

	// 2. Which ASes churn the most? (weekly windows)
	weekly := core.Windows(res.Daily, 7)
	per := core.PerASChurn(weekly, world.ASOf, 500)
	type asChurn struct {
		as  string
		pct float64
	}
	var ranked []asChurn
	for as, pct := range per {
		ranked = append(ranked, asChurn{as.String(), pct})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].pct > ranked[j].pct })
	fmt.Printf("\n== top churning ASes (of %d with ≥500 active IPs) ==\n", len(ranked))
	for i, r := range ranked {
		if i == 5 {
			break
		}
		fmt.Printf("%-8s median weekly up-events: %.1f%%\n", r.as, r.pct)
	}

	// 3. Event sizes: individual addresses or whole ranges?
	fmt.Println("\n== up-event sizes (week-to-week) ==")
	dist := core.EventSizeDistribution(weekly[0], weekly[1], 8)
	for i, frac := range dist {
		fmt.Printf("%-6s %5.1f%%\n", core.EventSizeBinLabels[i], 100*frac)
	}

	// 4. How much of the churn does BGP reveal?
	fmt.Println("\n== BGP visibility of churn ==")
	for _, w := range []int{7, 28} {
		c := core.CorrelateBGP(res.Daily, w, res.Routing, cfg.DailyStart)
		fmt.Printf("%3d-day windows: up %.2f%%, down %.2f%%, steady %.2f%% coincide with BGP change\n",
			w, c.UpPct, c.DownPct, c.SteadyPct)
	}
	fmt.Println("\nconclusion: churn is ubiquitous at every window size and almost")
	fmt.Println("entirely invisible in the global routing table (paper §4.2).")
}
