// Demographics: Section 7's combined view — spatio-temporal
// utilization × traffic × relative host count per /24 block, and the
// per-registry breakdown a policy maker would consult.
package main

import (
	"fmt"

	"ipscope/internal/analysis"
	"ipscope/internal/core"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

func main() {
	ctx := analysis.NewContext(
		synthnet.Config{Seed: 5, NumASes: 150, MeanBlocksPerAS: 10},
		sim.DefaultConfig())

	features := ctx.BlockFeatures()
	demo := core.BuildDemographics(features)
	fmt.Printf("active /24 blocks: %d\n\n", demo.Total())

	// The STU axis splits the address space into two worlds.
	marg := demo.STUMarginal()
	fmt.Println("blocks per STU decile:")
	for i, n := range marg {
		fmt.Printf("  %.1f-%.1f: %d\n", float64(i)/10, float64(i+1)/10, n)
	}

	// Per-RIR panels: who still has slack, who is saturated?
	fmt.Println("\nper-registry utilization pressure:")
	for _, p := range core.BuildRIRDemographics(features, ctx.World.Registry) {
		if p.Total == 0 {
			continue
		}
		fmt.Printf("  %-8s %5d active blocks, %4.1f%% in high-STU half\n",
			p.RIR, p.Total, 100*p.HighSTUShare())
	}

	// Potential utilization (Section 5.4): how much space could better
	// configuration free inside already-active blocks?
	pot := core.EstimatePotential(ctx.Obs.Daily, core.ActiveBlocks(ctx.Obs.Daily))
	fmt.Printf("\npotential: %d active blocks, %d sparsely-filled (FD<64),\n",
		pot.ActiveBlocks, pot.LowFDBlocks)
	fmt.Printf("%d cycling pools of which %d underutilized; shrinking them would\n",
		pot.DynamicHighFD, pot.DynamicLowSTU)
	fmt.Printf("free ≈%d addresses without touching unallocated space.\n", pot.FreeableAddrs)
}
