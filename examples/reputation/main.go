// Reputation horizons: the paper's Section 8 security implication.
// IP-based reputation (blocklists, rate limits, trust scores) silently
// assumes the same party keeps the address; this example measures, per
// assignment practice, how long that assumption holds and what TTL a
// reputation system should attach to verdicts in each block.
package main

import (
	"fmt"
	"math"
	"sort"

	"ipscope/internal/core"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

func main() {
	world := synthnet.Generate(synthnet.Config{Seed: 17, NumASes: 120, MeanBlocksPerAS: 10})
	cfg := sim.DefaultConfig()
	cfg.Days = 112
	cfg.DailyStart, cfg.DailyLen = 0, 112
	res := sim.Run(world, cfg)

	// Group reputation horizons by the block's true assignment policy.
	type agg struct {
		horizons []float64
		persist  []float64
	}
	byPolicy := map[synthnet.Policy]*agg{}
	for _, b := range world.Blocks {
		if !b.Policy.IsClient() {
			continue
		}
		st := core.BlockStability(res.Daily, b.Block)
		if st.ActiveAddrs == 0 {
			continue
		}
		h := core.ReputationHorizon(res.Daily, b.Block, 0.5)
		a := byPolicy[b.Policy]
		if a == nil {
			a = &agg{}
			byPolicy[b.Policy] = a
		}
		a.horizons = append(a.horizons, h)
		a.persist = append(a.persist, st.Persistence)
	}

	type row struct {
		pol     synthnet.Policy
		medianH float64
		medianP float64
		n       int
	}
	var rows []row
	for pol, a := range byPolicy {
		rows = append(rows, row{pol, median(a.horizons), median(a.persist), len(a.horizons)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].medianH > rows[j].medianH })

	fmt.Println("behavioural-staleness horizon by assignment practice")
	fmt.Println("(days until P(verdict still describes the address) < 50%,")
	fmt.Println(" from reassignment or from the holder going idle)")
	fmt.Printf("%-22s %6s %12s %10s\n", "policy", "blocks", "persistence", "TTL days")
	for _, r := range rows {
		ttl := fmt.Sprintf("%.1f", r.medianH)
		if math.IsInf(r.medianH, 1) {
			ttl = "no expiry"
		}
		fmt.Printf("%-22s %6d %12.3f %10s\n", r.pol, r.n, r.medianP, ttl)
	}
	fmt.Println("\nimplication (paper §8): always-on infrastructure (gateways, bots)")
	fmt.Println("carries reputation indefinitely, dynamic pools go stale within")
	fmt.Println("days — and for the reassignment component specifically, block")
	fmt.Println("classification (FD>250 = cycling pool) plus change detection")
	fmt.Println("(Figure 8a) should force expiry on renumbering or repurposing.")
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
