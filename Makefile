# The same targets CI runs, so humans and the pipeline never diverge.
GO ?= go
STATICCHECK ?= staticcheck
STATICCHECK_VERSION = 2024.1.1
SMOKE_DIR ?= .pipeline-smoke
SERVE_SMOKE_DIR ?= .serve-smoke
LIVE_SMOKE_DIR ?= .live-smoke
CLUSTER_SMOKE_DIR ?= .cluster-smoke
RPC_SMOKE_DIR ?= .rpc-smoke
SNAPSHOT_SMOKE_DIR ?= .snapshot-smoke
HISTORY_SMOKE_DIR ?= .history-smoke
LOADGEN_SMOKE_DIR ?= .loadgen-smoke
CHAOS_SMOKE_DIR ?= .chaos-smoke
SMOKE_FLAGS = -seed 5 -ases 24 -blocks-per-as 6 -days 56

.PHONY: all build vet fmt-check lint test race bench bench-smoke fuzz-smoke pipeline-smoke serve-smoke live-smoke cluster-smoke rpc-smoke snapshot-smoke history-smoke loadgen-smoke chaos-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt; prints the offenders.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Static analysis beyond vet (checks pinned by staticcheck.conf). CI
# installs the pinned version; locally, install with:
#   go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
lint:
	@command -v $(STATICCHECK) >/dev/null 2>&1 || { \
		echo "staticcheck not found; install with:"; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)"; \
		exit 1; \
	}
	$(STATICCHECK) ./...

test:
	$(GO) test ./...

# The parallel engine makes the race detector non-negotiable.
race:
	$(GO) test -race ./...

# Full benchmark run (the paper's tables/figures + ablations).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# One-iteration benchmark smoke: proves every benchmark still runs and
# records the perf trajectory as a JSON event stream.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' -json . > BENCH_ci.json
	@grep -c '"Action":"output"' BENCH_ci.json >/dev/null && echo "BENCH_ci.json written"

# End-to-end smoke of the observation pipeline: gen streams a dataset
# over a pipe into collect, collect persists it canonically, report
# analyzes the store — and the result must be byte-identical to a
# direct in-process run on the same seed.
pipeline-smoke:
	rm -rf $(SMOKE_DIR) && mkdir -p $(SMOKE_DIR)
	$(GO) run ./cmd/ipscope-gen $(SMOKE_FLAGS) -dataset - \
		| $(GO) run ./cmd/ipscope-collect -ingest - -store $(SMOKE_DIR)/world.obs
	$(GO) run ./cmd/ipscope-report -dataset $(SMOKE_DIR)/world.obs -o $(SMOKE_DIR)/report-dataset.txt
	$(GO) run ./cmd/ipscope-report $(SMOKE_FLAGS) -o $(SMOKE_DIR)/report-direct.txt
	cmp $(SMOKE_DIR)/report-direct.txt $(SMOKE_DIR)/report-dataset.txt
	@echo "pipeline-smoke: reports byte-identical"

# End-to-end smoke of the serving layer: gen builds a small dataset,
# ipscope-serve compiles it into a query index, and -selfcheck probes
# every /v1 endpoint over real HTTP, verifying the JSON fields against
# the index (which the serve test suite proves field-identical to the
# batch report on the same dataset).
serve-smoke:
	rm -rf $(SERVE_SMOKE_DIR) && mkdir -p $(SERVE_SMOKE_DIR)
	$(GO) run ./cmd/ipscope-gen $(SMOKE_FLAGS) -dataset $(SERVE_SMOKE_DIR)/serve.obs
	$(GO) run ./cmd/ipscope-serve -dataset $(SERVE_SMOKE_DIR)/serve.obs -selfcheck
	@echo "serve-smoke: all endpoints verified"

# Short fuzzing passes over the binary decoders: proves FuzzDecode
# (dataset codec), FuzzRPCDecode (shard↔router RPC codec) and
# FuzzSnapshotDecode (persistent index snapshots) still run and gives
# the mutator a brief shot at fresh corpus.
fuzz-smoke:
	$(GO) test ./internal/obs -run='^$$' -fuzz='^FuzzDecode$$' -fuzztime=10s
	$(GO) test ./internal/rpc -run='^$$' -fuzz='^FuzzRPCDecode$$' -fuzztime=10s
	$(GO) test ./internal/query -run='^$$' -fuzz='^FuzzSnapshotDecode$$' -fuzztime=10s

# End-to-end smoke of the live serving pipeline: ipscope-gen -connect
# streams a paced simulation into ipscope-serve -obs-listen, the
# /v1/healthz epoch must advance mid-stream, and the final /v1/summary
# must match a batch -dump-summary over the persisted dataset.
live-smoke:
	rm -rf $(LIVE_SMOKE_DIR) && mkdir -p $(LIVE_SMOKE_DIR)
	$(GO) build -o $(LIVE_SMOKE_DIR)/ipscope-gen ./cmd/ipscope-gen
	$(GO) build -o $(LIVE_SMOKE_DIR)/ipscope-serve ./cmd/ipscope-serve
	sh scripts/live_smoke.sh $(LIVE_SMOKE_DIR)

# Historical-epoch smoke: live stream with -retain-epochs, time-travel
# byte-equality, /v1/delta across a swap, eviction 404 body.
history-smoke:
	rm -rf $(HISTORY_SMOKE_DIR) && mkdir -p $(HISTORY_SMOKE_DIR)
	$(GO) build -o $(HISTORY_SMOKE_DIR)/ipscope-gen ./cmd/ipscope-gen
	$(GO) build -o $(HISTORY_SMOKE_DIR)/ipscope-serve ./cmd/ipscope-serve
	sh scripts/history_smoke.sh $(HISTORY_SMOKE_DIR)

# End-to-end smoke of the sharded serving cluster: two block-partitioned
# shards plus a scatter-gather router; the routed /v1/summary must
# byte-equal the single-node batch summary, and killing one shard must
# degrade only its blocks (see scripts/cluster_smoke.sh).
cluster-smoke:
	rm -rf $(CLUSTER_SMOKE_DIR) && mkdir -p $(CLUSTER_SMOKE_DIR)
	$(GO) build -o $(CLUSTER_SMOKE_DIR)/ipscope-gen ./cmd/ipscope-gen
	$(GO) build -o $(CLUSTER_SMOKE_DIR)/ipscope-serve ./cmd/ipscope-serve
	$(GO) build -o $(CLUSTER_SMOKE_DIR)/ipscope-router ./cmd/ipscope-router
	sh scripts/cluster_smoke.sh $(CLUSTER_SMOKE_DIR)

# End-to-end smoke of the binary RPC shard transport: the same cluster
# topology with shards on -rpc-listen and the router on -transport=rpc;
# the routed summary must byte-equal the batch summary, and a killed
# shard must degrade exactly as over HTTP (see scripts/rpc_smoke.sh).
rpc-smoke:
	rm -rf $(RPC_SMOKE_DIR) && mkdir -p $(RPC_SMOKE_DIR)
	$(GO) build -o $(RPC_SMOKE_DIR)/ipscope-gen ./cmd/ipscope-gen
	$(GO) build -o $(RPC_SMOKE_DIR)/ipscope-serve ./cmd/ipscope-serve
	$(GO) build -o $(RPC_SMOKE_DIR)/ipscope-router ./cmd/ipscope-router
	sh scripts/rpc_smoke.sh $(RPC_SMOKE_DIR)

# End-to-end smoke of persistent index snapshots: batch
# save→verify→load→serve must byte-equal the build that saved it, and a
# kill -9'd live shard must restart from its -snapshot-dir checkpoint,
# catch up, and converge the routed cluster summary on the batch one
# (see scripts/snapshot_smoke.sh).
snapshot-smoke:
	rm -rf $(SNAPSHOT_SMOKE_DIR) && mkdir -p $(SNAPSHOT_SMOKE_DIR)
	$(GO) build -o $(SNAPSHOT_SMOKE_DIR)/ipscope-gen ./cmd/ipscope-gen
	$(GO) build -o $(SNAPSHOT_SMOKE_DIR)/ipscope-serve ./cmd/ipscope-serve
	$(GO) build -o $(SNAPSHOT_SMOKE_DIR)/ipscope-router ./cmd/ipscope-router
	$(GO) build -o $(SNAPSHOT_SMOKE_DIR)/ipscope-snapshot ./cmd/ipscope-snapshot
	sh scripts/snapshot_smoke.sh $(SNAPSHOT_SMOKE_DIR)

# Deterministic load test of the read path: ipscope-loadgen drives a
# single serve node and a router+2-shard cluster with the same seeded
# workload (zipfian mix, burst, thundering herd, epoch storm); both runs
# must print the same workload hash with zero hard errors, and the
# latency percentiles land in a warn-only SLO table
# (see scripts/loadgen_smoke.sh).
loadgen-smoke:
	rm -rf $(LOADGEN_SMOKE_DIR) && mkdir -p $(LOADGEN_SMOKE_DIR)
	$(GO) build -o $(LOADGEN_SMOKE_DIR)/ipscope-gen ./cmd/ipscope-gen
	$(GO) build -o $(LOADGEN_SMOKE_DIR)/ipscope-serve ./cmd/ipscope-serve
	$(GO) build -o $(LOADGEN_SMOKE_DIR)/ipscope-router ./cmd/ipscope-router
	$(GO) build -o $(LOADGEN_SMOKE_DIR)/ipscope-loadgen ./cmd/ipscope-loadgen
	sh scripts/loadgen_smoke.sh $(LOADGEN_SMOKE_DIR)

# Replica-failover chaos test: an R=2 fleet (2 ranges x 2 replicas)
# behind ipscope-router -replicas 2; one replica of each range is
# kill -9'd (one before, one while ipscope-loadgen drives traffic) and
# the run must finish with zero hard errors and the single-node
# workload hash; restarted replicas must be re-admitted and healthz
# return to all-ok (see scripts/chaos_smoke.sh).
chaos-smoke:
	rm -rf $(CHAOS_SMOKE_DIR) && mkdir -p $(CHAOS_SMOKE_DIR)
	$(GO) build -o $(CHAOS_SMOKE_DIR)/ipscope-gen ./cmd/ipscope-gen
	$(GO) build -o $(CHAOS_SMOKE_DIR)/ipscope-serve ./cmd/ipscope-serve
	$(GO) build -o $(CHAOS_SMOKE_DIR)/ipscope-router ./cmd/ipscope-router
	$(GO) build -o $(CHAOS_SMOKE_DIR)/ipscope-loadgen ./cmd/ipscope-loadgen
	sh scripts/chaos_smoke.sh $(CHAOS_SMOKE_DIR)

ci: build vet fmt-check test race bench-smoke fuzz-smoke pipeline-smoke serve-smoke live-smoke cluster-smoke rpc-smoke snapshot-smoke history-smoke loadgen-smoke chaos-smoke
