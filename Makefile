# The same targets CI runs, so humans and the pipeline never diverge.
GO ?= go

.PHONY: all build vet fmt-check test race bench bench-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt; prints the offenders.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# The parallel engine makes the race detector non-negotiable.
race:
	$(GO) test -race ./...

# Full benchmark run (the paper's tables/figures + ablations).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# One-iteration benchmark smoke: proves every benchmark still runs and
# records the perf trajectory as a JSON event stream.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' -json . > BENCH_ci.json
	@grep -c '"Action":"output"' BENCH_ci.json >/dev/null && echo "BENCH_ci.json written"

ci: build vet fmt-check test race bench-smoke
