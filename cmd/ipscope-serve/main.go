// Command ipscope-serve is the serving tier of the pipeline: it
// compiles an observation dataset into a query index and answers
// per-address / per-/24 / per-prefix / per-AS questions over an HTTP
// JSON API, without ever paying the batch-report cost on the request
// path.
//
// Batch mode compiles one dataset and serves it frozen; live mode tails
// a growing observation stream through the incremental applier
// (internal/query.Applier), periodically publishing new epoch-stamped
// snapshots while serving — so "ipscope-gen -connect ADDR | this
// process" forms an end-to-end live pipeline whose /v1/healthz epoch
// advances as simulated days complete.
//
//	-dataset FILE     serve a stored observation dataset (ipscope-gen
//	                  -dataset FILE produces one); without it (and
//	                  without a live flag) a world is simulated
//	                  in-process from -seed/-ases/... flags
//	-follow FILE      live: tail FILE as a producer appends to it,
//	                  publishing snapshots as days arrive
//	-obs-listen ADDR  live: accept one TCP observation stream
//	                  (the peer runs "ipscope-gen -connect ADDR")
//	-publish-every N  live: publish a new epoch every N applied days
//	                  (default 1)
//	-snapshot-save FILE
//	                  batch: after the build, persist the index as an
//	                  on-disk snapshot (atomic rename; the shard range is
//	                  embedded when -shard-count is in effect)
//	-snapshot-load FILE
//	                  batch: skip the build entirely and serve a saved
//	                  snapshot — hot sections map zero-copy, so cold
//	                  start is milliseconds instead of a full rebuild;
//	                  a sharded snapshot restores its own partition range
//	-snapshot-dir DIR live: checkpoint the applier into DIR as epochs
//	                  publish, and on startup resume from the newest
//	                  readable checkpoint, tailing the stream from the
//	                  cut instead of replaying it from the beginning
//	-snapshot-every N live: checkpoint every N published epochs
//	                  (default 1)
//	-snapshot-keep N  live: retain only the newest N checkpoints
//	                  (default 3)
//	-follow-poll DUR  live: -follow poll interval (default 200ms; tests
//	                  and smoke scripts lower it)
//	-listen ADDR      bind address (default 127.0.0.1:8090; :0 picks an
//	                  ephemeral port, printed on startup)
//	-rpc-listen ADDR  also serve the binary RPC protocol (internal/rpc)
//	                  on ADDR and advertise it in /v1/cluster/info, so a
//	                  router running -transport=rpc upgrades its
//	                  connection to this shard
//	-cache N          response cache capacity (0 = default, -1 = off)
//	-retain-epochs N  keep the last N published epochs addressable:
//	                  ?epoch=E time travel on every lookup endpoint,
//	                  /v1/delta?from=&to= between two retained epochs,
//	                  /v1/movement?last=N per-epoch series (0 = retain
//	                  only the live epoch)
//	-access-log FILE  structured JSON access log ("-" = stderr)
//	-workers N        index build fan-out (<=0 = GOMAXPROCS; the index
//	                  is identical for any value)
//	-shard-count N    cluster: restrict this server to its slice of an
//	                  N-way block partition (see cmd/ipscope-router)
//	-shard-index I    cluster: which slice (0-based) this shard owns
//	-replica R        cluster: this process's replica id (0-based) for
//	                  its range, for fleets where several processes
//	                  serve the same slice behind a router running
//	                  -replicas. Identity only: builds are
//	                  deterministic, so every replica of a range serves
//	                  a bit-identical index — the id just labels the
//	                  process in healthz/cluster-info
//	-selfcheck        start on an ephemeral port, probe every endpoint
//	                  over real HTTP, verify responses against the
//	                  index, then exit (CI smoke mode)
//	-dump-summary     print the index summary as JSON and exit without
//	                  serving (CI smoke mode: compare a live server's
//	                  /v1/summary against the batch build)
//	-pprof ADDR       expose net/http/pprof on a side listener (off by
//	                  default; profile loadgen runs without exposing
//	                  pprof on the serving port)
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests drain before the process exits.
//
// Endpoints: /v1/addr/{ip}, /v1/block/{prefix24}, /v1/prefix/{cidr},
// /v1/as/{asn}, /v1/summary, /v1/delta, /v1/movement, /v1/healthz.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof side listener
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"ipscope/internal/cluster"
	"ipscope/internal/ipv4"
	"ipscope/internal/obs"
	"ipscope/internal/query"
	"ipscope/internal/rpc"
	"ipscope/internal/serve"
	"ipscope/internal/serve/wire"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ipscope-serve: ")

	dataset := flag.String("dataset", "", "serve a stored observation dataset")
	follow := flag.String("follow", "", "live: tail a growing dataset file")
	obsListen := flag.String("obs-listen", "", "live: accept one TCP observation stream on this address")
	publishEvery := flag.Int("publish-every", 1, "live: publish a new epoch every N applied days")
	snapSave := flag.String("snapshot-save", "", "batch: persist the built index as a snapshot file")
	snapLoad := flag.String("snapshot-load", "", "batch: serve a saved snapshot instead of building")
	snapDir := flag.String("snapshot-dir", "", "live: checkpoint directory (resume from newest on startup)")
	snapEvery := flag.Int("snapshot-every", 1, "live: checkpoint every N published epochs")
	snapKeep := flag.Int("snapshot-keep", 3, "live: retain only the newest N checkpoints")
	followPoll := flag.Duration("follow-poll", 0, "live: -follow poll interval (0 = default 200ms)")
	listen := flag.String("listen", "127.0.0.1:8090", "HTTP listen address")
	rpcListen := flag.String("rpc-listen", "", "also serve the binary RPC protocol on this address")
	cacheSize := flag.Int("cache", 0, "response cache capacity (0 = default, negative = disabled)")
	retainEpochs := flag.Int("retain-epochs", 0, "retain the last N epochs for ?epoch=//v1/delta//v1/movement (0 = live epoch only)")
	accessLog := flag.String("access-log", "", `structured access log file ("-" = stderr)`)
	workers := flag.Int("workers", 0, "index build workers (<=0 = GOMAXPROCS)")
	shardIndex := flag.Int("shard-index", 0, "cluster: this shard's index (with -shard-count)")
	shardCount := flag.Int("shard-count", 0, "cluster: total shards; >0 restricts this server to its block partition")
	replica := flag.Int("replica", 0, "cluster: this process's replica id for its range (identity only; replicas serve bit-identical indexes)")
	selfcheck := flag.Bool("selfcheck", false, "probe every endpoint over HTTP and exit")
	dumpSummary := flag.Bool("dump-summary", false, "print the index summary as JSON and exit")
	seed := flag.Uint64("seed", 1, "world seed (no -dataset)")
	ases := flag.Int("ases", 300, "number of autonomous systems (no -dataset)")
	blocksPerAS := flag.Int("blocks-per-as", 12, "mean /24 blocks per AS (no -dataset)")
	days := flag.Int("days", 364, "simulated days (no -dataset)")
	pprofAddr := flag.String("pprof", "", "expose net/http/pprof on a side listener (empty = off)")
	flag.Parse()

	startPprof(*pprofAddr)

	live := *follow != "" || *obsListen != ""
	if *follow != "" && *obsListen != "" {
		log.Fatal("use either -follow or -obs-listen, not both")
	}
	if live && (*dataset != "" || *selfcheck || *dumpSummary) {
		log.Fatal("live modes (-follow/-obs-listen) exclude -dataset, -selfcheck and -dump-summary")
	}
	if *selfcheck && *dumpSummary {
		log.Fatal("use either -selfcheck or -dump-summary, not both")
	}
	if *shardCount > 0 && (*shardIndex < 0 || *shardIndex >= *shardCount) {
		log.Fatalf("-shard-index %d outside 0..%d", *shardIndex, *shardCount-1)
	}
	if *replica < 0 {
		log.Fatalf("-replica %d must be >= 0", *replica)
	}
	if *replica > 0 && *shardCount == 0 && *snapLoad == "" {
		log.Fatal("-replica requires a partition identity: -shard-count (use -shard-count 1 for a single-range fleet) or -snapshot-load")
	}
	if live && (*snapSave != "" || *snapLoad != "") {
		log.Fatal("-snapshot-save/-snapshot-load are batch flags; live modes use -snapshot-dir")
	}
	if !live && *snapDir != "" {
		log.Fatal("-snapshot-dir requires a live mode (-follow or -obs-listen)")
	}
	if *snapLoad != "" && *dataset != "" {
		log.Fatal("use either -snapshot-load or -dataset, not both")
	}
	if *snapLoad != "" && *shardCount > 0 {
		log.Fatal("-snapshot-load restores the partition range saved in the snapshot; drop -shard-count")
	}
	if *followPoll != 0 && *follow == "" {
		log.Fatal("-follow-poll only applies to -follow")
	}

	cfg := serve.Config{CacheSize: *cacheSize, RetainEpochs: *retainEpochs}
	switch *accessLog {
	case "":
	case "-":
		cfg.AccessLog = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		cfg.AccessLog = f
	}

	if live {
		runLive(cfg, *listen, *rpcListen, liveOptions{
			follow:       *follow,
			obsListen:    *obsListen,
			publishEvery: *publishEvery,
			workers:      *workers,
			shardIndex:   *shardIndex,
			shardCount:   *shardCount,
			replica:      *replica,
			snapshotDir:  *snapDir,
			snapEvery:    *snapEvery,
			snapKeep:     *snapKeep,
			followPoll:   *followPoll,
		})
		return
	}

	start := time.Now()
	var idx *query.Index
	if *snapLoad != "" {
		loaded, err := query.LoadSnapshotFile(*snapLoad, query.LoadOptions{Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
		idx = loaded.Index
		if sh := loaded.Info.Shard; sh != nil {
			cfg.Shard = &wire.ShardInfo{Index: sh.Index, Count: sh.Count, Lo: sh.Lo, Hi: sh.Hi, Replica: *replica}
			log.Printf("shard %d/%d replica %d: serving block range [%d, %d)", sh.Index, sh.Count, *replica, sh.Lo, sh.Hi)
		} else if *replica > 0 {
			// An unsharded snapshot is the one-range partition; the
			// replica id still needs a partition identity to live on.
			cfg.Shard = &wire.ShardInfo{Index: 0, Count: 1, Lo: 0, Hi: 1 << 24, Replica: *replica}
		}
		log.Printf("loaded snapshot %s in %v: epoch %d",
			*snapLoad, time.Since(start).Round(time.Microsecond), idx.Epoch())
	} else {
		idx = buildIndex(&cfg, *dataset, *seed, *ases, *blocksPerAS, *days, *workers, *shardIndex, *shardCount, *replica)
	}
	if *snapSave != "" {
		data := query.EncodeSnapshot(idx, shardRangeOf(cfg.Shard))
		if err := query.WriteSnapshotFile(*snapSave, data); err != nil {
			log.Fatal(err)
		}
		log.Printf("snapshot saved to %s (%d bytes)", *snapSave, len(data))
	}
	if *dumpSummary {
		if err := json.NewEncoder(os.Stdout).Encode(idx.Summary()); err != nil {
			log.Fatal(err)
		}
		return
	}
	log.Printf("index ready in %v: %d active /24 blocks, %d-day window",
		time.Since(start).Round(time.Millisecond), idx.NumBlocks(), idx.DailyLen())

	srv := serve.New(idx, cfg)
	rpcSrv := startRPC(srv, *rpcListen)

	bind := *listen
	if *selfcheck {
		bind = "127.0.0.1:0"
	}
	addr, err := srv.Listen(bind)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on http://%s", addr)

	if *selfcheck {
		err := runSelfcheck(idx, "http://"+addr.String(), srv.Shard())
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if serr := srv.Shutdown(sctx); err == nil {
			err = serr
		}
		if rpcSrv != nil {
			if serr := rpcSrv.Shutdown(sctx); err == nil {
				err = serr
			}
		}
		if err != nil {
			log.Fatalf("selfcheck: %v", err)
		}
		hits, misses, _ := srv.CacheStats()
		log.Printf("selfcheck passed (cache: %d hits, %d misses)", hits, misses)
		return
	}

	waitAndShutdown(srv, rpcSrv)
}

// startPprof exposes net/http/pprof on a side listener when addr is
// non-empty, so loadgen runs can be profiled without touching the
// serving mux. Off by default.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("pprof listen: %v", err)
	}
	log.Printf("pprof on http://%s/debug/pprof/", ln.Addr())
	go http.Serve(ln, nil) // pprof registers on http.DefaultServeMux
}

// shardRangeOf translates the server's advertised partition into the
// snapshot codec's shard range (nil when unsharded).
func shardRangeOf(sh *wire.ShardInfo) *query.ShardRange {
	if sh == nil {
		return nil
	}
	return &query.ShardRange{Index: sh.Index, Count: sh.Count, Lo: sh.Lo, Hi: sh.Hi}
}

// buildIndex compiles the batch-mode index from a stored dataset or an
// in-process simulation, restricting to the owned slice in shard mode
// (and recording the partition range in cfg for /v1/cluster/info).
func buildIndex(cfg *serve.Config, dataset string, seed uint64, ases, blocksPerAS, days, workers, shardIndex, shardCount, replica int) *query.Index {
	var src obs.Source
	if dataset != "" {
		log.Printf("loading dataset %s...", dataset)
		src = obs.FileSource(dataset)
	} else {
		log.Printf("no -dataset: generating world (%d ASes) and simulating %d days...", ases, days)
		w := synthnet.Generate(synthnet.Config{Seed: seed, NumASes: ases, MeanBlocksPerAS: blocksPerAS})
		scfg := sim.DefaultConfig()
		scfg.Days = days
		res := sim.Run(w, scfg)
		src = &res.Data
	}
	buildOpts := query.Options{Workers: workers}
	if shardCount > 0 {
		// Shard mode: derive the partition plan from the dataset's own
		// meta and restrict both the dataset and the world-proportional
		// build work to this shard's slice, so the index (and its
		// memory) only covers the owned block range.
		d, err := src.Observations()
		if err != nil {
			log.Fatal(err)
		}
		plan, err := cluster.PlanShards(synthnet.Generate(d.Meta.World), shardCount)
		if err != nil {
			log.Fatal(err)
		}
		lo, hi := plan.Range(shardIndex)
		cfg.Shard = &wire.ShardInfo{Index: shardIndex, Count: shardCount, Lo: lo, Hi: hi, Replica: replica}
		src = obs.FilterSource(d, plan.Keep(shardIndex))
		buildOpts.Keep = plan.Keep(shardIndex)
		log.Printf("shard %d/%d replica %d: serving block range [%d, %d)", shardIndex, shardCount, replica, lo, hi)
	}
	idx, err := query.Build(src, buildOpts)
	if err != nil {
		log.Fatal(err)
	}
	return idx
}

// startRPC binds the binary RPC listener when -rpc-listen is set; the
// advertised address reaches routers via /v1/cluster/info, so it is
// published before the HTTP listener comes up.
func startRPC(srv *serve.Server, addr string) *rpc.Server {
	if addr == "" {
		return nil
	}
	rs := rpc.NewServer(srv, rpc.Options{})
	raddr, err := rs.Listen(addr)
	if err != nil {
		log.Fatal(err)
	}
	srv.SetRPCAddr(raddr.String())
	log.Printf("rpc on %s", raddr)
	return rs
}

// waitAndShutdown blocks until SIGINT/SIGTERM, then drains in-flight
// requests.
func waitAndShutdown(srv *serve.Server, rpcSrv *rpc.Server) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Printf("signal received; draining in-flight requests...")
	drain(srv, rpcSrv)
}

// drain stops the server (HTTP and, if bound, RPC), letting in-flight
// requests finish.
func drain(srv *serve.Server, rpcSrv *rpc.Server) {
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	if rpcSrv != nil {
		if err := rpcSrv.Shutdown(sctx); err != nil {
			log.Fatalf("rpc shutdown: %v", err)
		}
	}
	log.Printf("bye")
}

// liveOptions bundles the live-mode knobs: stream source, publish
// cadence, partition slice and snapshot checkpointing.
type liveOptions struct {
	follow, obsListen      string
	publishEvery, workers  int
	shardIndex, shardCount int
	replica                int
	snapshotDir            string
	snapEvery, snapKeep    int
	followPoll             time.Duration
}

// runLive serves a growing observation stream: events flow through the
// incremental applier, and every publish interval the server atomically
// swaps in a freshly published epoch — lookups keep being answered from
// the previous snapshot in the meantime, and the HTTP endpoint is up
// (warming) before the first day arrives.
//
// With -snapshot-dir, every Nth published epoch is also checkpointed to
// disk (atomic rename, bounded retention), and startup resumes from the
// newest readable checkpoint: the saved index is published immediately
// and the stream is tailed from the cut — already-applied frames are
// discarded at the frame level, so restart cost is O(snapshot sections),
// not O(replayed days).
func runLive(cfg serve.Config, listen, rpcListen string, o liveOptions) {
	if o.publishEvery < 1 {
		o.publishEvery = 1
	}
	if o.snapEvery < 1 {
		o.snapEvery = 1
	}
	if o.snapKeep < 1 {
		o.snapKeep = 1
	}
	srv := serve.New(nil, cfg)
	rpcSrv := startRPC(srv, rpcListen)
	addr, err := srv.Listen(listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on http://%s (warming: no snapshot yet)", addr)

	// One signal context covers the whole lifetime — stream, final
	// publish and drain — so a signal landing at any point (including
	// during the drain itself) is absorbed instead of killing the
	// process mid-flight.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// In shard mode the slice predicate only exists once the stream's
	// meta event yields the partition plan (or, on resume, the range
	// saved in the checkpoint); keep is bound then, before the meta
	// event reaches the applier (same goroutine).
	var keep func(b ipv4.Block) bool
	applierOpts := query.Options{Workers: o.workers}
	if o.shardCount > 0 {
		applierOpts.Keep = func(b ipv4.Block) bool { return keep == nil || keep(b) }
	}

	var (
		applier   *query.Applier
		skip      obs.SkipCounts
		resumed   bool
		snapShard *query.ShardRange
	)
	if o.snapshotDir != "" {
		if err := os.MkdirAll(o.snapshotDir, 0o755); err != nil {
			log.Fatal(err)
		}
		if loaded, name := loadNewestSnapshot(o.snapshotDir, query.LoadOptions{Workers: o.workers}); loaded != nil {
			sh := loaded.Info.Shard
			switch {
			case o.shardCount == 0 && sh != nil:
				log.Fatalf("checkpoint %s belongs to shard %d/%d but no -shard-count was given", name, sh.Index, sh.Count)
			case o.shardCount > 0 && (sh == nil || sh.Index != o.shardIndex || sh.Count != o.shardCount):
				log.Fatalf("checkpoint %s does not match -shard-index %d -shard-count %d", name, o.shardIndex, o.shardCount)
			}
			if sh != nil {
				lo, hi := sh.Lo, sh.Hi
				keep = func(b ipv4.Block) bool { return uint32(b) >= lo && uint32(b) < hi }
				srv.SetShard(wire.ShardInfo{Index: sh.Index, Count: sh.Count, Lo: lo, Hi: hi, Replica: o.replica})
				snapShard = &query.ShardRange{Index: sh.Index, Count: sh.Count, Lo: lo, Hi: hi}
				log.Printf("shard %d/%d replica %d: applying block range [%d, %d)", sh.Index, sh.Count, o.replica, lo, hi)
			}
			// The loaded index may alias the checkpoint's mapping; it
			// stays mapped for the life of the process. Pruning may
			// later unlink the file, which is safe: the mapping keeps
			// the inode alive.
			ap, sk, err := loaded.ResumeApplier(applierOpts)
			if err != nil {
				log.Fatalf("resume from checkpoint %s: %v", name, err)
			}
			applier, skip, resumed = ap, sk, true
			srv.Publish(loaded.Index)
			log.Printf("resumed from snapshot %s: epoch %d, %d days applied, %d active /24 blocks",
				name, loaded.Index.Epoch(), ap.Days(), loaded.Index.NumBlocks())
		}
	}
	if applier == nil {
		applier = query.NewApplier(applierOpts)
	}
	lastPublished := applier.Days()
	publish := func() error {
		idx, err := applier.Snapshot()
		if err != nil {
			return err
		}
		srv.Publish(idx)
		lastPublished = applier.Days()
		log.Printf("published epoch %d: %d days applied, %d active /24 blocks",
			idx.Epoch(), idx.DailyLen(), idx.NumBlocks())
		if o.snapshotDir != "" && idx.Epoch()%uint64(o.snapEvery) == 0 {
			saveCheckpoint(o.snapshotDir, o.snapKeep, applier, snapShard, idx.Epoch())
		}
		return nil
	}
	var sink obs.Sink = obs.SinkFunc(func(e obs.Event) error {
		if _, ok := e.(obs.MetaEvent); ok && resumed {
			// The applier already carries the dataset identity from the
			// checkpoint; the re-delivered meta frame only re-arms the
			// partition sink below.
			resumed = false
			return nil
		}
		if err := applier.Observe(e); err != nil {
			return err
		}
		if _, ok := e.(obs.DayEvent); ok && applier.Days()-lastPublished >= o.publishEvery {
			return publish()
		}
		return nil
	})
	if o.shardCount > 0 {
		// Live shard mode: the partition plan is computed from the
		// stream's meta event; from then on the applier only sees (and
		// pays for) this shard's slice. The owned range is published to
		// the server the moment it is known, so /v1/cluster/info can
		// answer routers before the first epoch.
		sink = cluster.PartitionSink(sink, o.shardIndex, o.shardCount, func(lo, hi uint32) {
			keep = func(b ipv4.Block) bool { return uint32(b) >= lo && uint32(b) < hi }
			srv.SetShard(wire.ShardInfo{Index: o.shardIndex, Count: o.shardCount, Lo: lo, Hi: hi, Replica: o.replica})
			snapShard = &query.ShardRange{Index: o.shardIndex, Count: o.shardCount, Lo: lo, Hi: hi}
			log.Printf("shard %d/%d replica %d: applying block range [%d, %d)", o.shardIndex, o.shardCount, o.replica, lo, hi)
		})
	}

	var streamErr error
	if o.follow != "" {
		log.Printf("following dataset file %s", o.follow)
		streamErr = obs.FollowWith(ctx, o.follow, obs.FollowOptions{Poll: o.followPoll, Skip: skip}, sink)
	} else {
		streamErr = acceptStream(ctx, o.obsListen, skip, sink)
	}
	if ctx.Err() != nil {
		// Interrupted while streaming: drain and exit on this signal.
		log.Printf("signal received; draining in-flight requests...")
		drain(srv, rpcSrv)
		return
	}
	switch {
	case streamErr != nil && applier.Epoch() == 0:
		// The stream died before anything could be served.
		log.Fatalf("live stream failed before any snapshot was published: %v", streamErr)
	case streamErr != nil:
		// A dead producer must not take the read path down with it: keep
		// serving the last published epoch until the operator decides.
		log.Printf("live stream failed: %v", streamErr)
		log.Printf("continuing to serve epoch %d until signalled", applier.Epoch())
	default:
		// The stream completed: the end-of-stream aggregates (per-block
		// traffic/UA, scan surfaces) arrived after the last day, so one
		// final epoch folds them in; the server keeps serving it until
		// signalled.
		if err := publish(); err != nil {
			log.Fatalf("final publish: %v", err)
		}
		log.Printf("stream complete; serving final epoch")
	}
	<-ctx.Done()
	log.Printf("signal received; draining in-flight requests...")
	drain(srv, rpcSrv)
}

// snapPattern names checkpoint files so that lexical order is epoch
// order: the zero-padded epoch makes "newest" a plain string sort.
const snapPattern = "snap-%010d.ipsnap"

// loadNewestSnapshot scans dir for checkpoints, newest first, and
// returns the first one that loads cleanly (with its path). A corrupt
// or torn file is logged and skipped — an older intact checkpoint
// beats refusing to start.
func loadNewestSnapshot(dir string, opts query.LoadOptions) (*query.Loaded, string) {
	names, err := filepath.Glob(filepath.Join(dir, "snap-*.ipsnap"))
	if err != nil {
		log.Fatal(err)
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for _, name := range names {
		loaded, err := query.LoadSnapshotFile(name, opts)
		if err != nil {
			log.Printf("skipping unreadable checkpoint %s: %v", name, err)
			continue
		}
		if !loaded.Resumable() {
			log.Printf("skipping non-resumable snapshot %s (batch -snapshot-save output?)", name)
			loaded.Close()
			continue
		}
		return loaded, name
	}
	return nil, ""
}

// saveCheckpoint persists the applier's resumable state after a publish
// and prunes old checkpoints down to the retention bound. Checkpoint
// failure is logged, not fatal: the serving path must not die because
// the disk is full.
func saveCheckpoint(dir string, keepN int, a *query.Applier, shard *query.ShardRange, epoch uint64) {
	data, err := a.EncodeCheckpoint(shard)
	if err != nil {
		log.Printf("checkpoint epoch %d: %v (continuing without)", epoch, err)
		return
	}
	name := filepath.Join(dir, fmt.Sprintf(snapPattern, epoch))
	if err := query.WriteSnapshotFile(name, data); err != nil {
		log.Printf("checkpoint %s: %v (continuing without)", name, err)
		return
	}
	log.Printf("checkpoint %s (%d bytes)", name, len(data))
	names, err := filepath.Glob(filepath.Join(dir, "snap-*.ipsnap"))
	if err != nil {
		return
	}
	sort.Strings(names)
	for len(names) > keepN {
		if err := os.Remove(names[0]); err != nil {
			log.Printf("prune %s: %v", names[0], err)
		}
		names = names[1:]
	}
}

// acceptStream accepts one TCP connection and decodes its observation
// stream into sink. A signal while waiting in Accept closes the
// listener so the wait ends cleanly.
func acceptStream(ctx context.Context, obsListen string, skip obs.SkipCounts, sink obs.Sink) error {
	ln, err := net.Listen("tcp", obsListen)
	if err != nil {
		return err
	}
	defer ln.Close()
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	log.Printf("waiting for an observation stream on %s", ln.Addr())
	conn, err := ln.Accept()
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	defer conn.Close()
	// A signal mid-stream must unblock the decoder's read, not just the
	// accept loop, or graceful shutdown would wait on the peer.
	go func() {
		<-ctx.Done()
		conn.Close()
	}()
	log.Printf("stream connected from %s", conn.RemoteAddr())
	return obs.StreamDecodeFrom(conn, skip, sink)
}

// runSelfcheck probes every endpoint over real HTTP and verifies the
// JSON responses against the index the server was built from — the
// same source of truth the batch report uses (the serve test suite
// proves that identity), so CI can assert the full pipeline without
// parsing report text. It is partition-aware: probe targets come from
// the index itself (so a shard only probes blocks it owns), and in
// shard mode the cluster plane is verified too — the advertised range
// must contain every indexed block and the mergeable summary partial
// must finalize to the served summary.
func runSelfcheck(idx *query.Index, base string, shard wire.ShardInfo) error {
	getJSON := func(path string, out any) error {
		resp, err := http.Get(base + path)
		if err != nil {
			return fmt.Errorf("GET %s: %w", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return fmt.Errorf("GET %s: %w", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return json.Unmarshal(body, out)
	}

	if idx.NumBlocks() == 0 {
		return fmt.Errorf("index has no blocks")
	}
	blk := idx.Blocks()[idx.NumBlocks()/2]
	want, _ := idx.Block(blk)

	var gotBlock query.BlockView
	if err := getJSON("/v1/block/"+blk.String(), &gotBlock); err != nil {
		return err
	}
	if gotBlock != want {
		return fmt.Errorf("/v1/block/%v = %+v, index says %+v", blk, gotBlock, want)
	}

	var gotAddr query.AddrView
	addr := blk.Addr(0)
	if err := getJSON("/v1/addr/"+addr.String(), &gotAddr); err != nil {
		return err
	}
	if wantAddr := idx.Addr(addr); gotAddr != wantAddr {
		return fmt.Errorf("/v1/addr/%v = %+v, index says %+v", addr, gotAddr, wantAddr)
	}

	var gotPrefix query.PrefixView
	p := ipv4.MustNewPrefix(blk.First(), 20)
	if err := getJSON("/v1/prefix/"+p.String(), &gotPrefix); err != nil {
		return err
	}
	if gotPrefix.ActiveBlocks == 0 {
		return fmt.Errorf("/v1/prefix/%v reports no active blocks", p)
	}

	var gotAS query.ASView
	if err := getJSON(fmt.Sprintf("/v1/as/AS%d", want.AS), &gotAS); err != nil {
		return err
	}
	if gotAS.ActiveBlocks == 0 {
		return fmt.Errorf("/v1/as/AS%d reports no active blocks", want.AS)
	}

	var gotSummary query.Summary
	if err := getJSON("/v1/summary", &gotSummary); err != nil {
		return err
	}
	if gotSummary != idx.Summary() {
		return fmt.Errorf("/v1/summary = %+v, index says %+v", gotSummary, idx.Summary())
	}

	var health map[string]any
	if err := getJSON("/v1/healthz", &health); err != nil {
		return err
	}
	if health["status"] != "ok" {
		return fmt.Errorf("/v1/healthz = %v", health)
	}

	// Cluster plane: the advertised partition must cover every indexed
	// block, and the mergeable partial must finalize to the summary the
	// server answers with.
	var info wire.ShardInfo
	if err := getJSON("/v1/cluster/info", &info); err != nil {
		return err
	}
	if info != shard {
		return fmt.Errorf("/v1/cluster/info = %+v, server says %+v", info, shard)
	}
	for _, b := range idx.Blocks() {
		if !shard.Contains(b) {
			return fmt.Errorf("indexed block %v outside advertised range [%d, %d)", b, shard.Lo, shard.Hi)
		}
	}
	var partial query.SummaryPartial
	if err := getJSON("/v1/cluster/summary", &partial); err != nil {
		return err
	}
	if got := partial.Finalize(); got != idx.Summary() {
		return fmt.Errorf("/v1/cluster/summary finalizes to %+v, index says %+v", got, idx.Summary())
	}

	// Second pass over one endpoint must be served from cache.
	if err := getJSON("/v1/block/"+blk.String(), &gotBlock); err != nil {
		return err
	}
	return nil
}
