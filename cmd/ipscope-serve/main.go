// Command ipscope-serve is the serving tier of the pipeline: it
// compiles an observation dataset into a query index and answers
// per-address / per-/24 / per-prefix / per-AS questions over an HTTP
// JSON API, without ever paying the batch-report cost on the request
// path.
//
//	-dataset FILE     serve a stored observation dataset (ipscope-gen
//	                  -dataset FILE produces one); without it a world is
//	                  simulated in-process from -seed/-ases/... flags
//	-listen ADDR      bind address (default 127.0.0.1:8090; :0 picks an
//	                  ephemeral port, printed on startup)
//	-cache N          response cache capacity (0 = default, -1 = off)
//	-access-log FILE  structured JSON access log ("-" = stderr)
//	-workers N        index build fan-out (<=0 = GOMAXPROCS; the index
//	                  is identical for any value)
//	-selfcheck        start on an ephemeral port, probe every endpoint
//	                  over real HTTP, verify responses against the
//	                  index, then exit (CI smoke mode)
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests drain before the process exits.
//
// Endpoints: /v1/addr/{ip}, /v1/block/{prefix24}, /v1/prefix/{cidr},
// /v1/as/{asn}, /v1/summary, /v1/healthz.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ipscope/internal/ipv4"
	"ipscope/internal/obs"
	"ipscope/internal/query"
	"ipscope/internal/serve"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ipscope-serve: ")

	dataset := flag.String("dataset", "", "serve a stored observation dataset")
	listen := flag.String("listen", "127.0.0.1:8090", "HTTP listen address")
	cacheSize := flag.Int("cache", 0, "response cache capacity (0 = default, negative = disabled)")
	accessLog := flag.String("access-log", "", `structured access log file ("-" = stderr)`)
	workers := flag.Int("workers", 0, "index build workers (<=0 = GOMAXPROCS)")
	selfcheck := flag.Bool("selfcheck", false, "probe every endpoint over HTTP and exit")
	seed := flag.Uint64("seed", 1, "world seed (no -dataset)")
	ases := flag.Int("ases", 300, "number of autonomous systems (no -dataset)")
	blocksPerAS := flag.Int("blocks-per-as", 12, "mean /24 blocks per AS (no -dataset)")
	days := flag.Int("days", 364, "simulated days (no -dataset)")
	flag.Parse()

	start := time.Now()
	var src obs.Source
	if *dataset != "" {
		log.Printf("loading dataset %s...", *dataset)
		src = obs.FileSource(*dataset)
	} else {
		log.Printf("no -dataset: generating world (%d ASes) and simulating %d days...", *ases, *days)
		w := synthnet.Generate(synthnet.Config{Seed: *seed, NumASes: *ases, MeanBlocksPerAS: *blocksPerAS})
		scfg := sim.DefaultConfig()
		scfg.Days = *days
		res := sim.Run(w, scfg)
		src = &res.Data
	}
	idx, err := query.Build(src, query.Options{Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("index ready in %v: %d active /24 blocks, %d-day window",
		time.Since(start).Round(time.Millisecond), idx.NumBlocks(), idx.DailyLen())

	cfg := serve.Config{CacheSize: *cacheSize}
	switch *accessLog {
	case "":
	case "-":
		cfg.AccessLog = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		cfg.AccessLog = f
	}
	srv := serve.New(idx, cfg)

	bind := *listen
	if *selfcheck {
		bind = "127.0.0.1:0"
	}
	addr, err := srv.Listen(bind)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on http://%s", addr)

	if *selfcheck {
		err := runSelfcheck(idx, "http://"+addr.String())
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if serr := srv.Shutdown(sctx); err == nil {
			err = serr
		}
		if err != nil {
			log.Fatalf("selfcheck: %v", err)
		}
		hits, misses, _ := srv.CacheStats()
		log.Printf("selfcheck passed (cache: %d hits, %d misses)", hits, misses)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Printf("signal received; draining in-flight requests...")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	log.Printf("bye")
}

// runSelfcheck probes every endpoint over real HTTP and verifies the
// JSON responses against the index the server was built from — the
// same source of truth the batch report uses (the serve test suite
// proves that identity), so CI can assert the full pipeline without
// parsing report text.
func runSelfcheck(idx *query.Index, base string) error {
	getJSON := func(path string, out any) error {
		resp, err := http.Get(base + path)
		if err != nil {
			return fmt.Errorf("GET %s: %w", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return fmt.Errorf("GET %s: %w", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return json.Unmarshal(body, out)
	}

	if idx.NumBlocks() == 0 {
		return fmt.Errorf("index has no blocks")
	}
	blk := idx.Blocks()[idx.NumBlocks()/2]
	want, _ := idx.Block(blk)

	var gotBlock query.BlockView
	if err := getJSON("/v1/block/"+blk.String(), &gotBlock); err != nil {
		return err
	}
	if gotBlock != want {
		return fmt.Errorf("/v1/block/%v = %+v, index says %+v", blk, gotBlock, want)
	}

	var gotAddr query.AddrView
	addr := blk.Addr(0)
	if err := getJSON("/v1/addr/"+addr.String(), &gotAddr); err != nil {
		return err
	}
	if wantAddr := idx.Addr(addr); gotAddr != wantAddr {
		return fmt.Errorf("/v1/addr/%v = %+v, index says %+v", addr, gotAddr, wantAddr)
	}

	var gotPrefix query.PrefixView
	p := ipv4.MustNewPrefix(blk.First(), 20)
	if err := getJSON("/v1/prefix/"+p.String(), &gotPrefix); err != nil {
		return err
	}
	if gotPrefix.ActiveBlocks == 0 {
		return fmt.Errorf("/v1/prefix/%v reports no active blocks", p)
	}

	var gotAS query.ASView
	if err := getJSON(fmt.Sprintf("/v1/as/AS%d", want.AS), &gotAS); err != nil {
		return err
	}
	if gotAS.ActiveBlocks == 0 {
		return fmt.Errorf("/v1/as/AS%d reports no active blocks", want.AS)
	}

	var gotSummary query.Summary
	if err := getJSON("/v1/summary", &gotSummary); err != nil {
		return err
	}
	if gotSummary != idx.Summary() {
		return fmt.Errorf("/v1/summary = %+v, index says %+v", gotSummary, idx.Summary())
	}

	var health map[string]any
	if err := getJSON("/v1/healthz", &health); err != nil {
		return err
	}
	if health["status"] != "ok" {
		return fmt.Errorf("/v1/healthz = %v", health)
	}

	// Second pass over one endpoint must be served from cache.
	if err := getJSON("/v1/block/"+blk.String(), &gotBlock); err != nil {
		return err
	}
	return nil
}
