// Command ipscope-router is the scatter-gather front of a sharded
// serving cluster: it speaks the same /v1/* API as a single
// ipscope-serve node, but answers from a fleet of block-partitioned
// shards (ipscope-serve -shard-index I -shard-count N).
//
// At startup the router reads every shard's /v1/cluster/info (retrying
// while shards compile their slices), validates that the advertised
// block ranges tile the whole /24 space exactly once, and then routes:
//
//   - /v1/addr and /v1/block proxy to the shard owning the block; the
//     response carries the owning shard's epoch and ETag plus an
//     X-Shard header;
//   - /v1/summary, /v1/as and /v1/prefix fan out to the owning shards
//     with bounded concurrency and fold the mergeable partials — the
//     merged answer is byte-identical (modulo epoch metadata) to a
//     single node over the unsharded dataset;
//   - /v1/healthz aggregates shard health: 200 "ok" when every shard
//     serves a snapshot, 503 "degraded" otherwise, with the minimum
//     shard epoch as the cluster epoch.
//
// A dead shard degrades only its own blocks (503); every other shard
// keeps answering.
//
//	-shards URLS   comma-separated shard base URLs, ascending range
//	               order not required (ranges are discovered)
//	-listen ADDR   bind address (default 127.0.0.1:8095)
//	-transport T   shard transport: "http" (JSON over the public API,
//	               the default) or "rpc" (persistent pipelined binary
//	               connections to shards started with -rpc-listen;
//	               shards advertising no RPC endpoint fall back to
//	               HTTP individually)
//	-gather N      fan-out concurrency bound (default 8)
//	-info-timeout  how long to wait for shards at startup (default 30s)
//	-pprof ADDR    expose net/http/pprof on a side listener (off by
//	               default)
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof side listener
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ipscope/internal/cluster"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ipscope-router: ")

	shards := flag.String("shards", "", "comma-separated shard base URLs (required)")
	listen := flag.String("listen", "127.0.0.1:8095", "HTTP listen address")
	transport := flag.String("transport", cluster.TransportHTTP, `shard transport: "http" or "rpc"`)
	gather := flag.Int("gather", cluster.DefaultGather, "scatter-gather concurrency bound")
	infoTimeout := flag.Duration("info-timeout", cluster.DefaultInfoTimeout, "startup partition discovery timeout")
	pprofAddr := flag.String("pprof", "", "expose net/http/pprof on a side listener (empty = off)")
	flag.Parse()

	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("pprof listen: %v", err)
		}
		log.Printf("pprof on http://%s/debug/pprof/", ln.Addr())
		go http.Serve(ln, nil) // pprof registers on http.DefaultServeMux
	}

	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimSuffix(u, "/"))
		}
	}
	if len(urls) == 0 {
		log.Fatal("no shards: pass -shards http://host1:port,http://host2:port,...")
	}

	log.Printf("discovering partition behind %d shard(s)...", len(urls))
	router, err := cluster.NewRouter(urls, cluster.RouterOptions{
		Transport:   *transport,
		Gather:      *gather,
		InfoTimeout: *infoTimeout,
	})
	if err != nil {
		log.Fatal(err)
	}

	addr, err := router.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("routing %d shard(s) on http://%s", router.NumShards(), addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Printf("signal received; draining in-flight requests...")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := router.Shutdown(sctx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	router.Close()
	log.Printf("bye")
}
