// Command ipscope-router is the scatter-gather front of a sharded
// serving cluster: it speaks the same /v1/* API as a single
// ipscope-serve node, but answers from a fleet of block-partitioned
// shards (ipscope-serve -shard-index I -shard-count N), optionally
// replicated (-replicas R: R processes per range, each started with a
// distinct -replica id).
//
// At startup the router reads every process's /v1/cluster/info
// (retrying while shards compile their slices), groups replicas by
// owned range, validates that the ranges tile the whole /24 space
// exactly once with R processes each, and then routes:
//
//   - /v1/addr and /v1/block proxy to a healthy replica of the range
//     owning the block — retrying the next replica on failure; the
//     response carries the answering replica's epoch and ETag plus
//     X-Shard/X-Replica headers;
//   - /v1/summary, /v1/as, /v1/prefix, /v1/delta and /v1/movement fan
//     out one fetch per covering range with bounded concurrency,
//     failing over within each range mid-gather, and fold the
//     mergeable partials — the merged answer is byte-identical
//     (modulo epoch metadata) to a single node over the unsharded
//     dataset, whichever replicas answered, because every replica of
//     a range serves a bit-identical index;
//   - /v1/healthz probes every replica (including ones in backoff —
//     the operator's active re-admission path), reports per-process
//     shardStates and per-range rangeStates, and aggregates: 200 "ok"
//     while every range has at least one serving replica, 503
//     "degraded" only when some range has none.
//
// Health is tracked per replica: request failures mark a replica down
// passively, a background prober re-checks it, and exponential
// backoff gates re-admission. With -replicas 2 the fleet keeps
// answering every request with one replica of each range dead; a dead
// range (all replicas down) degrades only its own blocks while every
// other range keeps answering.
//
//	-shards URLS   comma-separated process base URLs, any order
//	               (ranges are discovered; with -replicas R the URLs
//	               must form R complete copies of the partition)
//	-replicas R    replication factor (default 1): how many of the
//	               -shards processes serve each range
//	-listen ADDR   bind address (default 127.0.0.1:8095)
//	-transport T   shard transport: "http" (JSON over the public API,
//	               the default) or "rpc" (persistent pipelined binary
//	               connections to shards started with -rpc-listen;
//	               shards advertising no RPC endpoint fall back to
//	               HTTP individually)
//	-gather N      fan-out concurrency bound (default 8)
//	-info-timeout  how long to wait for shards at startup (default 30s)
//	-probe-every D background health probe cadence (default 1s;
//	               negative disables background probing)
//	-pprof ADDR    expose net/http/pprof on a side listener (off by
//	               default)
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof side listener
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ipscope/internal/cluster"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ipscope-router: ")

	shards := flag.String("shards", "", "comma-separated shard base URLs (required)")
	replicas := flag.Int("replicas", 1, "replication factor: processes per block range")
	listen := flag.String("listen", "127.0.0.1:8095", "HTTP listen address")
	transport := flag.String("transport", cluster.TransportHTTP, `shard transport: "http" or "rpc"`)
	gather := flag.Int("gather", cluster.DefaultGather, "scatter-gather concurrency bound")
	infoTimeout := flag.Duration("info-timeout", cluster.DefaultInfoTimeout, "startup partition discovery timeout")
	probeEvery := flag.Duration("probe-every", cluster.DefaultProbeInterval, "background health probe cadence (negative = off)")
	pprofAddr := flag.String("pprof", "", "expose net/http/pprof on a side listener (empty = off)")
	flag.Parse()

	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("pprof listen: %v", err)
		}
		log.Printf("pprof on http://%s/debug/pprof/", ln.Addr())
		go http.Serve(ln, nil) // pprof registers on http.DefaultServeMux
	}

	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimSuffix(u, "/"))
		}
	}
	if len(urls) == 0 {
		log.Fatal("no shards: pass -shards http://host1:port,http://host2:port,...")
	}

	log.Printf("discovering partition behind %d process(es)...", len(urls))
	router, err := cluster.NewRouter(urls, cluster.RouterOptions{
		Transport:     *transport,
		Gather:        *gather,
		InfoTimeout:   *infoTimeout,
		Replicas:      *replicas,
		ProbeInterval: *probeEvery,
	})
	if err != nil {
		log.Fatal(err)
	}

	addr, err := router.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("routing %d range(s) x %d replica(s) on http://%s", router.NumShards(), router.NumReplicas(), addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Printf("signal received; draining in-flight requests...")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := router.Shutdown(sctx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	router.Close()
	log.Printf("bye")
}
