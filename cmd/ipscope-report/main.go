// Command ipscope-report generates a synthetic world, simulates a year
// of address activity, runs every experiment of the paper (all tables
// and figures) and prints the report.
//
// Usage:
//
//	ipscope-report [-seed N] [-ases N] [-blocks-per-as N] [-days N] [-o FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"ipscope/internal/analysis"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ipscope-report: ")

	seed := flag.Uint64("seed", 1, "world seed")
	ases := flag.Int("ases", 300, "number of autonomous systems")
	blocksPerAS := flag.Int("blocks-per-as", 12, "mean /24 blocks per AS")
	days := flag.Int("days", 364, "simulated days (52 weeks)")
	out := flag.String("o", "", "write report to file instead of stdout")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	start := time.Now()
	wcfg := synthnet.Config{Seed: *seed, NumASes: *ases, MeanBlocksPerAS: *blocksPerAS}
	scfg := sim.DefaultConfig()
	scfg.Days = *days
	log.Printf("generating world (%d ASes) and simulating %d days...", *ases, *days)
	ctx := analysis.NewContext(wcfg, scfg)
	log.Printf("simulation done in %v; running experiments", time.Since(start).Round(time.Millisecond))

	analysis.RunAll(w, ctx, *seed)
	fmt.Fprintf(w, "\ntotal runtime: %v\n", time.Since(start).Round(time.Millisecond))
}
