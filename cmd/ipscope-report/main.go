// Command ipscope-report runs every experiment of the paper (all
// tables and figures) and prints the report. It works from either end
// of the pipeline:
//
//   - live: generate a synthetic world and simulate it in-process;
//   - stored: -dataset FILE analyzes an observation dataset produced by
//     ipscope-gen / ipscope-collect ("-" reads it from stdin). The world
//     is regenerated deterministically from the dataset's metadata, so
//     the report is byte-identical to the in-process run for the same
//     seed and configuration.
//
// Replay scenarios reshape the observations before analysis, without
// re-simulation:
//
//	-vantage-frac F   subsample the vantage to a fraction F of client
//	                  addresses (a smaller CDN footprint)
//	-window-days N    truncate the daily window to its first N days
//	                  (a shorter collection campaign)
//
// Usage:
//
//	ipscope-report [-seed N] [-ases N] [-blocks-per-as N] [-days N]
//	               [-dataset FILE] [-vantage-frac F] [-window-days N] [-o FILE]
package main

import (
	"flag"
	"io"
	"log"
	"os"
	"time"

	"ipscope/internal/analysis"
	"ipscope/internal/obs"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ipscope-report: ")

	seed := flag.Uint64("seed", 1, "world seed")
	ases := flag.Int("ases", 300, "number of autonomous systems")
	blocksPerAS := flag.Int("blocks-per-as", 12, "mean /24 blocks per AS")
	days := flag.Int("days", 364, "simulated days (52 weeks)")
	dataset := flag.String("dataset", "", `analyze a stored observation dataset ("-" = stdin) instead of simulating`)
	vantageFrac := flag.Float64("vantage-frac", 1, "replay scenario: keep this fraction of client addresses")
	windowDays := flag.Int("window-days", 0, "replay scenario: truncate the daily window to its first N days")
	out := flag.String("o", "", "write report to file instead of stdout")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	start := time.Now()
	var d *obs.Data
	var world *synthnet.World
	var err error
	switch {
	case *dataset == "-":
		log.Printf("reading dataset from stdin...")
		d, err = obs.Decode(os.Stdin)
	case *dataset != "":
		log.Printf("reading dataset %s...", *dataset)
		d, err = obs.DecodeFile(*dataset)
	default:
		wcfg := synthnet.Config{Seed: *seed, NumASes: *ases, MeanBlocksPerAS: *blocksPerAS}
		scfg := sim.DefaultConfig()
		scfg.Days = *days
		log.Printf("generating world (%d ASes) and simulating %d days...", *ases, *days)
		world = synthnet.Generate(wcfg)
		res := sim.Run(world, scfg)
		d = &res.Data
	}
	if err != nil {
		log.Fatal(err)
	}

	if *windowDays > 0 {
		d = d.TruncateWindow(*windowDays)
		log.Printf("scenario: daily window truncated to %d days", len(d.Daily))
	}
	if *vantageFrac < 1 {
		d = d.SubsampleVantage(*vantageFrac, *seed)
		log.Printf("scenario: vantage subsampled to %.0f%% of addresses", 100**vantageFrac)
	}

	var ctx *analysis.Context
	if world != nil {
		// Live path: the world is already in hand, no need to
		// regenerate it from the dataset metadata.
		ctx = analysis.NewContextFromData(world, d)
	} else if ctx, err = analysis.NewContextFromSource(d); err != nil {
		log.Fatal(err)
	}
	log.Printf("context ready in %v; running experiments", time.Since(start).Round(time.Millisecond))

	// The seed comes from the (possibly dataset-embedded) world, so a
	// stored dataset reports identically to the run that produced it.
	analysis.RunAll(w, ctx, ctx.World.Seed)
	// Timing goes to stderr so the report itself stays byte-identical
	// across live and dataset runs (the CI pipeline smoke diffs them).
	log.Printf("total runtime: %v", time.Since(start).Round(time.Millisecond))
}
