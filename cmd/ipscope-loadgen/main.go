// Command ipscope-loadgen is the query-workload engine: it simulates
// the read traffic of a large user population against a serve node or a
// router+shards cluster, deterministically. Where ipscope-gen simulates
// the address space, loadgen simulates the users hitting us — so every
// perf claim about the read path is a measured number, not a guess.
//
// The workload is derived, like everything else in the pipeline, from a
// seed: loadgen regenerates the same synthetic world the server was
// given (pass it the same -seed/-ases/-blocks-per-as flags as
// ipscope-gen) and draws request targets from it under a zipfian
// popularity law — a small hot set absorbs most lookups, with a long
// tail, which is what real lookup APIs see. The same seed always
// produces the same request sequence (the report prints the workload
// hash as proof), so two runs differ only in the serving binary under
// test.
//
// The run is split into phases that stress different parts of the read
// path:
//
//	steady   the mixed endpoint blend under zipfian popularity — the
//	         baseline cache-friendly traffic shape
//	burst    every worker hammers the hottest handful of blocks —
//	         maximum contention on a few cache-hit keys
//	herd     all workers converge on one cold URL at a time, rotating
//	         through fresh targets — the thundering-herd shape the
//	         single-flight cache exists for
//	storm    the post-epoch-swap shape: requests carry explicit
//	         ?epoch= pins spread over the server's retained range, the
//	         traffic a swap storm sends when clients chase epochs
//
// Output is a per-phase latency/error/cache table (p50/p90/p99,
// throughput, hit ratio), optionally as JSON (-json) and as a markdown
// SLO table (-md FILE) for the CI job summary. Transport errors and
// 5xx responses are hard errors (non-zero exit); 404s for never-active
// blocks are counted separately — they are part of the workload, not a
// failure. -slo-p99 prints a warn-only SLO verdict.
//
//	-target URL        server or router base URL (default
//	                   http://127.0.0.1:8090)
//	-seed/-ases/-blocks-per-as
//	                   regenerate the server's world (same flags as
//	                   ipscope-gen/ipscope-serve)
//	-requests N        total requests across all phases (default 4000)
//	-concurrency C     parallel client workers (default 2×GOMAXPROCS)
//	-mix SPEC          endpoint blend, e.g. "addr:45,block:25,
//	                   prefix:12,as:10,summary:6,movement:2"
//	-phases SPEC       phase weights, e.g. "steady:60,burst:20,
//	                   herd:10,storm:10" (0 disables a phase)
//	-zipf-s/-zipf-v    popularity skew (s>1; larger = hotter hot set)
//	-timeout D         per-request timeout (default 5s)
//	-warmup D          how long to wait for the target's /v1/healthz
//	                   (default 30s)
//	-json              emit the report as one JSON object
//	-md FILE           also write the report as a markdown table
//	-slo-p99 D         warn-only SLO: flag phases whose p99 exceeds D
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ipscope/internal/ipv4"
	"ipscope/internal/synthnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ipscope-loadgen: ")

	target := flag.String("target", "http://127.0.0.1:8090", "server or router base URL")
	seed := flag.Uint64("seed", 1, "world seed (must match the server's dataset)")
	ases := flag.Int("ases", 300, "number of autonomous systems (must match)")
	blocksPerAS := flag.Int("blocks-per-as", 12, "mean /24 blocks per AS (must match)")
	requests := flag.Int("requests", 4000, "total requests across all phases")
	concurrency := flag.Int("concurrency", 2*runtime.GOMAXPROCS(0), "parallel client workers")
	mixSpec := flag.String("mix", "addr:45,block:25,prefix:12,as:10,summary:6,movement:2", "endpoint blend weights")
	phaseSpec := flag.String("phases", "steady:60,burst:20,herd:10,storm:10", "phase weights")
	zipfS := flag.Float64("zipf-s", 1.2, "zipf skew (>1)")
	zipfV := flag.Float64("zipf-v", 1, "zipf v parameter (>=1)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request timeout")
	warmup := flag.Duration("warmup", 30*time.Second, "how long to wait for the target to become healthy")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	mdOut := flag.String("md", "", "also write the report as a markdown table to FILE")
	sloP99 := flag.Duration("slo-p99", 0, "warn-only SLO bound on per-phase p99 (0 = off)")
	flag.Parse()

	base := strings.TrimSuffix(*target, "/")
	mix, err := parseWeights(*mixSpec, []string{"addr", "block", "prefix", "as", "summary", "movement", "delta"})
	if err != nil {
		log.Fatalf("-mix: %v", err)
	}
	phases, err := parseWeights(*phaseSpec, []string{"steady", "burst", "herd", "storm"})
	if err != nil {
		log.Fatalf("-phases: %v", err)
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *concurrency * 2,
			MaxIdleConnsPerHost: *concurrency * 2,
		},
	}

	hz, err := awaitHealthy(client, base, *warmup)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("target %s healthy: epoch %d, retained %d..%d", base, hz.Epoch, hz.OldestEpoch, hz.NewestEpoch)

	// The same world the server indexed, regenerated from the seed —
	// loadgen needs no endpoint discovery because the dataset is a pure
	// function of its generation flags.
	world := synthnet.Generate(synthnet.Config{Seed: *seed, NumASes: *ases, MeanBlocksPerAS: *blocksPerAS})
	gen := newWorkload(world, hz, mix, *zipfS, *zipfV, *seed)

	report := runReport{
		Target:      base,
		Seed:        *seed,
		Requests:    *requests,
		Concurrency: *concurrency,
	}
	var allURLs []string
	start := time.Now()
	for _, ph := range []string{"steady", "burst", "herd", "storm"} {
		n := *requests * phases[ph] / totalWeight(phases)
		if n <= 0 {
			continue
		}
		urls := gen.phase(ph, n)
		allURLs = append(allURLs, urls...)
		report.Phases = append(report.Phases, runPhase(client, base, ph, urls, *concurrency))
	}
	report.WallSeconds = time.Since(start).Seconds()
	report.WorkloadHash = fmt.Sprintf("%016x", hashURLs(allURLs))
	report.total()

	if *jsonOut {
		json.NewEncoder(os.Stdout).Encode(report)
	} else {
		report.write(os.Stdout, *sloP99)
	}
	if *mdOut != "" {
		f, err := os.Create(*mdOut)
		if err != nil {
			log.Fatal(err)
		}
		report.writeMarkdown(f, *sloP99)
		f.Close()
	}
	if report.Errors > 0 {
		log.Fatalf("%d hard errors (transport or 5xx)", report.Errors)
	}
}

// healthz is the slice of /v1/healthz loadgen consumes.
type healthz struct {
	Status      string `json:"status"`
	Epoch       uint64 `json:"epoch"`
	OldestEpoch uint64 `json:"oldestEpoch"`
	NewestEpoch uint64 `json:"newestEpoch"`
}

func awaitHealthy(client *http.Client, base string, warmup time.Duration) (healthz, error) {
	deadline := time.Now().Add(warmup)
	var last error
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/v1/healthz")
		if err == nil {
			var hz healthz
			err = json.NewDecoder(resp.Body).Decode(&hz)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if err == nil && resp.StatusCode == http.StatusOK && hz.Status == "ok" {
				return hz, nil
			}
			last = fmt.Errorf("healthz status %d (%s)", resp.StatusCode, hz.Status)
		} else {
			last = err
		}
		time.Sleep(200 * time.Millisecond)
	}
	return healthz{}, fmt.Errorf("target %s never became healthy in %v: %v", base, warmup, last)
}

// parseWeights parses "name:weight,..." against the allowed name set.
func parseWeights(spec string, allowed []string) (map[string]int, error) {
	ok := make(map[string]bool, len(allowed))
	for _, a := range allowed {
		ok[a] = true
	}
	out := make(map[string]int)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, raw, found := strings.Cut(part, ":")
		if !found {
			return nil, fmt.Errorf("entry %q wants name:weight", part)
		}
		if !ok[name] {
			return nil, fmt.Errorf("unknown name %q (allowed: %s)", name, strings.Join(allowed, ", "))
		}
		w, err := strconv.Atoi(raw)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("weight %q is not a non-negative integer", raw)
		}
		out[name] = w
	}
	if totalWeight(out) == 0 {
		return nil, fmt.Errorf("every weight is zero")
	}
	return out, nil
}

func totalWeight(w map[string]int) int {
	t := 0
	for _, v := range w {
		t += v
	}
	return t
}

// workload turns the regenerated world into deterministic request URL
// sequences. One rand.Rand drives everything, so the full sequence is a
// pure function of (world seed, flags).
type workload struct {
	rng      *rand.Rand
	zipf     *rand.Zipf
	blocks   []*synthnet.Block
	asns     []uint32
	prefixes []ipv4.Prefix
	mix      []string // endpoint names, expanded by weight
	hz       healthz
}

func newWorkload(w *synthnet.World, hz healthz, mix map[string]int, zipfS, zipfV float64, seed uint64) *workload {
	rng := rand.New(rand.NewSource(int64(seed)*7919 + 17))
	g := &workload{rng: rng, blocks: w.Blocks, hz: hz}
	g.zipf = rand.NewZipf(rng, zipfS, zipfV, uint64(len(w.Blocks)-1))
	for _, as := range w.ASes {
		g.asns = append(g.asns, uint32(as.Num))
		g.prefixes = append(g.prefixes, as.Prefixes...)
	}
	// Expand the mix into a weighted pick table. Delta needs two
	// retained epochs; with none, its weight folds into summary.
	for name, weight := range mix {
		if name == "delta" && hz.OldestEpoch >= hz.NewestEpoch {
			name = "summary"
		}
		for i := 0; i < weight; i++ {
			g.mix = append(g.mix, name)
		}
	}
	sort.Strings(g.mix) // map order is random; the table must not be
	return g
}

// pick returns one zipf-popular block: index 0 is the hottest.
func (g *workload) pick() *synthnet.Block {
	return g.blocks[g.zipf.Uint64()]
}

func (g *workload) one() string {
	switch g.mix[g.rng.Intn(len(g.mix))] {
	case "addr":
		return "/v1/addr/" + g.pick().Block.Addr(byte(g.rng.Intn(256))).String()
	case "block":
		return "/v1/block/" + g.pick().Block.String()
	case "prefix":
		return "/v1/prefix/" + g.prefixes[g.rng.Intn(len(g.prefixes))].String()
	case "as":
		return fmt.Sprintf("/v1/as/AS%d", g.asns[g.rng.Intn(len(g.asns))])
	case "movement":
		return "/v1/movement"
	case "delta":
		return fmt.Sprintf("/v1/delta?from=%d&to=%d", g.hz.OldestEpoch, g.hz.NewestEpoch)
	default: // summary
		return "/v1/summary"
	}
}

// phase generates the n-request URL sequence for one phase.
func (g *workload) phase(name string, n int) []string {
	urls := make([]string, 0, n)
	switch name {
	case "burst":
		// The hottest few blocks, point lookups only: every request
		// after the first pass is a cache hit on a contended key.
		hot := len(g.blocks)
		if hot > 4 {
			hot = 4
		}
		for i := 0; i < n; i++ {
			urls = append(urls, "/v1/block/"+g.blocks[g.rng.Intn(hot)].Block.String())
		}
	case "herd":
		// Runs of one identical cold URL: the whole worker pool lands
		// on it at once and exactly one fill should run per rotation.
		run := n / 8
		if run < 1 {
			run = 1
		}
		var u string
		for i := 0; i < n; i++ {
			if i%run == 0 {
				u = "/v1/prefix/" + g.prefixes[g.rng.Intn(len(g.prefixes))].String()
			}
			urls = append(urls, u)
		}
	case "storm":
		// Epoch-pinned lookups spread over the retained range — the
		// traffic shape of clients chasing epochs across a swap storm.
		span := g.hz.NewestEpoch - g.hz.OldestEpoch + 1
		for i := 0; i < n; i++ {
			e := g.hz.OldestEpoch + g.rng.Uint64()%span
			urls = append(urls, fmt.Sprintf("/v1/block/%s?epoch=%d", g.pick().Block, e))
		}
	default: // steady
		for i := 0; i < n; i++ {
			urls = append(urls, g.one())
		}
	}
	return urls
}

func hashURLs(urls []string) uint64 {
	h := uint64(14695981039346656037)
	for _, u := range urls {
		for i := 0; i < len(u); i++ {
			h ^= uint64(u[i])
			h *= 1099511628211
		}
		h ^= '\n'
		h *= 1099511628211
	}
	return h
}

// phaseReport is the measured outcome of one phase.
type phaseReport struct {
	Phase      string  `json:"phase"`
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	NotFound   int     `json:"notFound"`
	CacheHits  int     `json:"cacheHits"`
	CacheMiss  int     `json:"cacheMisses"`
	P50Ms      float64 `json:"p50Ms"`
	P90Ms      float64 `json:"p90Ms"`
	P99Ms      float64 `json:"p99Ms"`
	Throughput float64 `json:"reqPerSec"`
}

type runReport struct {
	Target       string        `json:"target"`
	Seed         uint64        `json:"seed"`
	Requests     int           `json:"requests"`
	Concurrency  int           `json:"concurrency"`
	WorkloadHash string        `json:"workloadHash"`
	WallSeconds  float64       `json:"wallSeconds"`
	Errors       int           `json:"errors"`
	NotFound     int           `json:"notFound"`
	HitRate      float64       `json:"hitRate"`
	Phases       []phaseReport `json:"phases"`
}

// runPhase drives the worker pool through one phase's URL list.
func runPhase(client *http.Client, base, name string, urls []string, concurrency int) phaseReport {
	lat := make([]time.Duration, len(urls))
	var next atomic.Int64
	var errs, notFound, hits, misses atomic.Int64

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(urls) {
					return
				}
				t0 := time.Now()
				resp, err := client.Get(base + urls[i])
				if err != nil {
					errs.Add(1)
					lat[i] = time.Since(t0)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lat[i] = time.Since(t0)
				switch {
				case resp.StatusCode >= 500:
					errs.Add(1)
				case resp.StatusCode >= 400:
					notFound.Add(1)
				}
				switch resp.Header.Get("X-Cache") {
				case "hit":
					hits.Add(1)
				case "miss":
					misses.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return float64(lat[i].Microseconds()) / 1000
	}
	return phaseReport{
		Phase:      name,
		Requests:   len(urls),
		Errors:     int(errs.Load()),
		NotFound:   int(notFound.Load()),
		CacheHits:  int(hits.Load()),
		CacheMiss:  int(misses.Load()),
		P50Ms:      pct(0.50),
		P90Ms:      pct(0.90),
		P99Ms:      pct(0.99),
		Throughput: float64(len(urls)) / elapsed.Seconds(),
	}
}

func (r *runReport) total() {
	for _, p := range r.Phases {
		r.Errors += p.Errors
		r.NotFound += p.NotFound
	}
	var hits, seen int
	for _, p := range r.Phases {
		hits += p.CacheHits
		seen += p.CacheHits + p.CacheMiss
	}
	if seen > 0 {
		r.HitRate = float64(hits) / float64(seen)
	}
}

func (r *runReport) write(w io.Writer, sloP99 time.Duration) {
	fmt.Fprintf(w, "target %s  seed %d  workload %s  %d reqs  %d workers  %.2fs\n",
		r.Target, r.Seed, r.WorkloadHash, r.Requests, r.Concurrency, r.WallSeconds)
	fmt.Fprintf(w, "%-8s %8s %6s %6s %6s %9s %9s %9s %10s\n",
		"phase", "reqs", "errs", "404s", "hit%", "p50(ms)", "p90(ms)", "p99(ms)", "req/s")
	for _, p := range r.Phases {
		fmt.Fprintf(w, "%-8s %8d %6d %6d %6s %9.2f %9.2f %9.2f %10.0f%s\n",
			p.Phase, p.Requests, p.Errors, p.NotFound, hitPct(p),
			p.P50Ms, p.P90Ms, p.P99Ms, p.Throughput, sloMark(p, sloP99))
	}
	fmt.Fprintf(w, "total: %d errors, %d not-found, %.1f%% cache hits\n",
		r.Errors, r.NotFound, 100*r.HitRate)
}

func (r *runReport) writeMarkdown(w io.Writer, sloP99 time.Duration) {
	fmt.Fprintf(w, "### loadgen: %s (seed %d, workload %s)\n\n", r.Target, r.Seed, r.WorkloadHash)
	fmt.Fprintf(w, "| phase | reqs | errs | 404s | hit%% | p50 ms | p90 ms | p99 ms | req/s | SLO |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|---|---|---|---|\n")
	for _, p := range r.Phases {
		verdict := "—"
		if sloP99 > 0 {
			if p.P99Ms > float64(sloP99.Microseconds())/1000 {
				verdict = "⚠ WARN"
			} else {
				verdict = "ok"
			}
		}
		fmt.Fprintf(w, "| %s | %d | %d | %d | %s | %.2f | %.2f | %.2f | %.0f | %s |\n",
			p.Phase, p.Requests, p.Errors, p.NotFound, hitPct(p),
			p.P50Ms, p.P90Ms, p.P99Ms, p.Throughput, verdict)
	}
	fmt.Fprintf(w, "\n%d workers, %.2fs wall, %d errors, %.1f%% cache hits\n",
		r.Concurrency, r.WallSeconds, r.Errors, 100*r.HitRate)
}

func hitPct(p phaseReport) string {
	seen := p.CacheHits + p.CacheMiss
	if seen == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f", 100*float64(p.CacheHits)/float64(seen))
}

func sloMark(p phaseReport, sloP99 time.Duration) string {
	if sloP99 <= 0 {
		return ""
	}
	if p.P99Ms > float64(sloP99.Microseconds())/1000 {
		return "  SLO-WARN"
	}
	return "  SLO-ok"
}
