// Command ipscope-collect is the collection tier of the pipeline.
//
// Observation-dataset mode ingests a dataset stream produced by
// ipscope-gen, validates it, and persists it in canonical encoding:
//
//	-ingest FILE      read the dataset from FILE ("-" = stdin, so
//	                  "ipscope-gen -dataset - | ipscope-collect -ingest -"
//	                  forms a pipe)
//	-obs-listen ADDR  accept one TCP connection streaming a dataset
//	                  (the peer runs "ipscope-gen -connect ADDR")
//	-store FILE       write the ingested dataset to FILE
//
// The canonical re-encoding is deterministic: collecting the same
// stream twice produces byte-identical stores, and ipscope-report
// -dataset over the store reports identically to an in-process run.
//
// Without those flags it demonstrates the live cdnlog pipeline: a TCP
// collector, a fleet of synthetic edge servers streaming per-address
// request aggregates over real sockets, and the resulting summary.
// With -replay FILE it replays a .daily.bin file instead.
//
// Usage:
//
//	ipscope-collect [-ingest FILE|-] [-obs-listen ADDR] [-store FILE]
//	ipscope-collect [-edges N] [-days N] [-ases N] [-listen ADDR] [-replay FILE]
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"ipscope/internal/cdnlog"
	"ipscope/internal/ipv4"
	"ipscope/internal/obs"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ipscope-collect: ")

	ingest := flag.String("ingest", "", `ingest an observation dataset from FILE ("-" = stdin)`)
	obsListen := flag.String("obs-listen", "", "accept one observation dataset stream on this TCP address")
	store := flag.String("store", "", "persist the ingested dataset to FILE")

	edges := flag.Int("edges", 8, "number of concurrent edge servers (cdnlog demo)")
	days := flag.Int("days", 28, "days of activity to stream (cdnlog demo)")
	ases := flag.Int("ases", 60, "world size in ASes (cdnlog demo)")
	listen := flag.String("listen", "127.0.0.1:0", "collector listen address (cdnlog demo)")
	replay := flag.String("replay", "", "replay a .daily.bin file instead of simulating (cdnlog demo)")
	flag.Parse()

	if *ingest != "" || *obsListen != "" {
		ingestDataset(*ingest, *obsListen, *store)
		return
	}
	if *store != "" {
		log.Fatal("-store needs a dataset source: combine it with -ingest or -obs-listen")
	}
	cdnlogDemo(*edges, *days, *ases, *listen, *replay)
}

// ingestDataset decodes one dataset stream, persists it canonically
// and prints its summary.
func ingestDataset(ingest, obsListen, store string) {
	if ingest != "" && obsListen != "" {
		log.Fatal("use either -ingest or -obs-listen, not both")
	}
	start := time.Now()
	var d *obs.Data
	var err error
	switch {
	case ingest == "-":
		d, err = obs.Decode(os.Stdin)
	case ingest != "":
		d, err = obs.DecodeFile(ingest)
	default:
		ln, lerr := net.Listen("tcp", obsListen)
		if lerr != nil {
			log.Fatal(lerr)
		}
		// A signal while we block in Accept closes the listener, so the
		// wait ends cleanly instead of leaving the process hanging.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		go func() {
			<-ctx.Done()
			ln.Close()
		}()
		log.Printf("waiting for a dataset stream on %s", ln.Addr())
		conn, aerr := ln.Accept()
		interrupted := ctx.Err() != nil // before stop(), which also cancels ctx
		stop()
		ln.Close()
		if aerr != nil {
			if interrupted {
				log.Fatal("interrupted while waiting for a dataset stream")
			}
			log.Fatal(aerr)
		}
		d, err = obs.Decode(conn)
		conn.Close()
	}
	if err != nil {
		log.Fatalf("ingest: %v", err)
	}
	log.Printf("ingest done in %v", time.Since(start).Round(time.Millisecond))

	if store != "" {
		if err := obs.WriteFile(store, d); err != nil {
			log.Fatalf("store: %v", err)
		}
		log.Printf("stored dataset at %s", store)
	}

	run := d.Meta.Run
	fmt.Printf("dataset: world seed %d, %d ASes, %d days (daily window %d..%d)\n",
		d.Meta.World.Seed, d.Meta.World.NumASes, run.Days,
		run.DailyStart, run.DailyStart+run.DailyLen)
	fmt.Printf("daily snapshots:   %d (union %d addrs)\n", len(d.Daily), d.DailyWindowUnion().Len())
	fmt.Printf("weekly snapshots:  %d (union %d addrs)\n", len(d.Weekly), d.YearUnion().Len())
	fmt.Printf("ICMP snapshots:    %d (union %d addrs)\n", len(d.ICMPScans), d.ICMPUnion().Len())
	fmt.Printf("traffic blocks:    %d\n", len(d.Traffic))
	fmt.Printf("UA-sampled blocks: %d\n", len(d.UA))
	fmt.Printf("restructurings:    %d\n", len(d.Restructures))
}

// cdnlogDemo is the original live log pipeline: edge fleet over TCP
// into the sharded aggregator.
func cdnlogDemo(edges, days, ases int, listen, replay string) {
	agg := cdnlog.NewAggregator(days)
	col := cdnlog.NewCollector(agg)
	col.OnError = func(err error) { log.Printf("collector stream error: %v", err) }
	// A signal stops the accept loop cleanly; Close below then drains
	// whatever connections are still in flight.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	addr, err := col.ListenContext(ctx, listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("collector listening on %s", addr)

	start := time.Now()
	if replay != "" {
		replayFile(replay, addr.String())
	} else {
		streamWorld(edges, days, ases, addr.String())
	}
	if err := col.Close(); err != nil {
		log.Fatalf("collector: %v", err)
	}

	log.Printf("ingest done in %v", time.Since(start).Round(time.Millisecond))
	fmt.Printf("unique addresses: %d\n", agg.UniqueAddrs())
	fmt.Printf("total hits:       %d\n", agg.TotalHits())
	for d := 0; d < days && d < 7; d++ {
		fmt.Printf("day %2d actives:   %d\n", d, agg.Day(d).Len())
	}
	union := ipv4.NewSet()
	for _, s := range agg.DailySets() {
		union.UnionWith(s)
	}
	fmt.Printf("active /24 blocks: %d\n", union.NumBlocks())
}

// streamWorld simulates a world and partitions its daily activity
// across the edge fleet, each edge shipping its share over TCP.
func streamWorld(edges, days, ases int, addr string) {
	w := synthnet.Generate(synthnet.Config{Seed: 1, NumASes: ases, MeanBlocksPerAS: 8})
	cfg := sim.DefaultConfig()
	cfg.Days = days
	cfg.DailyStart, cfg.DailyLen = 0, days
	res := sim.Run(w, cfg)

	var wg sync.WaitGroup
	for e := 0; e < edges; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			edge, err := cdnlog.DialEdge(context.Background(), addr)
			if err != nil {
				log.Printf("edge %d: %v", e, err)
				return
			}
			defer edge.Close()
			for day, set := range res.Daily {
				set.ForEach(func(a ipv4.Addr) {
					// Shard addresses across edges the way a CDN maps
					// clients: by address hash.
					if int(uint32(a)>>8)%edges != e {
						return
					}
					if err := edge.Log(cdnlog.Record{Addr: a, Day: uint32(day), Hits: 1}); err != nil {
						log.Printf("edge %d: %v", e, err)
						return
					}
				})
			}
		}(e)
	}
	wg.Wait()
}

func replayFile(path, addr string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	edge, err := cdnlog.DialEdge(context.Background(), addr)
	if err != nil {
		log.Fatal(err)
	}
	defer edge.Close()
	err = cdnlog.DecodeStream(bufio.NewReaderSize(f, 1<<20), func(rs []cdnlog.Record) {
		for _, r := range rs {
			if err := edge.Log(r); err != nil {
				log.Fatal(err)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
