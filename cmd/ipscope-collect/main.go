// Command ipscope-collect demonstrates the live log pipeline: it
// starts a TCP collector, spawns a fleet of synthetic edge servers that
// stream per-address request aggregates over real sockets, and prints
// the resulting dataset summary.
//
// With -replay FILE it instead replays a .daily.bin file produced by
// ipscope-gen into the collector.
//
// Usage:
//
//	ipscope-collect [-edges N] [-days N] [-ases N] [-listen ADDR] [-replay FILE]
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"ipscope/internal/cdnlog"
	"ipscope/internal/ipv4"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ipscope-collect: ")

	edges := flag.Int("edges", 8, "number of concurrent edge servers")
	days := flag.Int("days", 28, "days of activity to stream")
	ases := flag.Int("ases", 60, "world size in ASes")
	listen := flag.String("listen", "127.0.0.1:0", "collector listen address")
	replay := flag.String("replay", "", "replay a .daily.bin file instead of simulating")
	flag.Parse()

	agg := cdnlog.NewAggregator(*days)
	col := cdnlog.NewCollector(agg)
	addr, err := col.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("collector listening on %s", addr)

	start := time.Now()
	if *replay != "" {
		replayFile(*replay, addr.String())
	} else {
		streamWorld(*edges, *days, *ases, addr.String())
	}
	if err := col.Close(); err != nil {
		log.Fatalf("collector: %v", err)
	}

	log.Printf("ingest done in %v", time.Since(start).Round(time.Millisecond))
	fmt.Printf("unique addresses: %d\n", agg.UniqueAddrs())
	fmt.Printf("total hits:       %d\n", agg.TotalHits())
	for d := 0; d < *days && d < 7; d++ {
		fmt.Printf("day %2d actives:   %d\n", d, agg.Day(d).Len())
	}
	union := ipv4.NewSet()
	for _, s := range agg.DailySets() {
		union.UnionWith(s)
	}
	fmt.Printf("active /24 blocks: %d\n", union.NumBlocks())
}

// streamWorld simulates a world and partitions its daily activity
// across the edge fleet, each edge shipping its share over TCP.
func streamWorld(edges, days, ases int, addr string) {
	w := synthnet.Generate(synthnet.Config{Seed: 1, NumASes: ases, MeanBlocksPerAS: 8})
	cfg := sim.DefaultConfig()
	cfg.Days = days
	cfg.DailyStart, cfg.DailyLen = 0, days
	res := sim.Run(w, cfg)

	var wg sync.WaitGroup
	for e := 0; e < edges; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			edge, err := cdnlog.DialEdge(context.Background(), addr)
			if err != nil {
				log.Printf("edge %d: %v", e, err)
				return
			}
			defer edge.Close()
			for day, set := range res.Daily {
				set.ForEach(func(a ipv4.Addr) {
					// Shard addresses across edges the way a CDN maps
					// clients: by address hash.
					if int(uint32(a)>>8)%edges != e {
						return
					}
					if err := edge.Log(cdnlog.Record{Addr: a, Day: uint32(day), Hits: 1}); err != nil {
						log.Printf("edge %d: %v", e, err)
						return
					}
				})
			}
		}(e)
	}
	wg.Wait()
}

func replayFile(path, addr string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	edge, err := cdnlog.DialEdge(context.Background(), addr)
	if err != nil {
		log.Fatal(err)
	}
	defer edge.Close()
	err = cdnlog.DecodeStream(bufio.NewReaderSize(f, 1<<20), func(rs []cdnlog.Record) {
		for _, r := range rs {
			if err := edge.Log(r); err != nil {
				log.Fatal(err)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
