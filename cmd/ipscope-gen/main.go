// Command ipscope-gen generates a synthetic world and a year of
// activity, then exports the datasets in open formats:
//
//   - PREFIX.nro        — allocations in NRO delegated-extended format
//   - PREFIX.daily.bin  — per-(address, day) activity records in the
//     cdnlog wire format (replayable into a collector)
//   - PREFIX.summary    — dataset summary (Table 1 style)
//
// Usage:
//
//	ipscope-gen [-seed N] [-ases N] [-days N] -prefix out/world
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ipscope/internal/cdnlog"
	"ipscope/internal/ipv4"
	"ipscope/internal/registry"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ipscope-gen: ")

	seed := flag.Uint64("seed", 1, "world seed")
	ases := flag.Int("ases", 120, "number of autonomous systems")
	blocksPerAS := flag.Int("blocks-per-as", 10, "mean /24 blocks per AS")
	days := flag.Int("days", 112, "simulated days")
	prefix := flag.String("prefix", "ipscope-world", "output file prefix")
	flag.Parse()

	wcfg := synthnet.Config{Seed: *seed, NumASes: *ases, MeanBlocksPerAS: *blocksPerAS}
	w := synthnet.Generate(wcfg)
	scfg := sim.DefaultConfig()
	scfg.Days = *days
	res := sim.Run(w, scfg)

	if dir := filepath.Dir(*prefix); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	// NRO allocations.
	nroPath := *prefix + ".nro"
	nf, err := os.Create(nroPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := registry.WriteNRO(nf, w.Registry.Allocations()); err != nil {
		log.Fatal(err)
	}
	nf.Close()

	// Daily activity stream.
	binPath := *prefix + ".daily.bin"
	bf, err := os.Create(binPath)
	if err != nil {
		log.Fatal(err)
	}
	bw := bufio.NewWriterSize(bf, 1<<20)
	records := 0
	for day, set := range res.Daily {
		var batch []cdnlog.Record
		set.ForEach(func(a ipv4.Addr) {
			hits := uint32(1)
			if bt := res.Traffic[a.Block()]; bt != nil {
				da := bt.DaysActive[a.Host()]
				if da > 0 {
					hits = uint32(bt.Hits[a.Host()]/float64(da)) + 1
				}
			}
			batch = append(batch, cdnlog.Record{Addr: a, Day: uint32(day), Hits: hits})
		})
		if err := cdnlog.WriteFrame(bw, batch); err != nil {
			log.Fatal(err)
		}
		records += len(batch)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	bf.Close()

	// Summary.
	sumPath := *prefix + ".summary"
	sf, err := os.Create(sumPath)
	if err != nil {
		log.Fatal(err)
	}
	daily := cdnlog.Summarize(res.Daily, w.ASOf)
	weekly := cdnlog.Summarize(res.Weekly, w.ASOf)
	stats := w.Summarize()
	fmt.Fprintf(sf, "seed=%d ases=%d blocks=%d capacity=%d\n",
		*seed, stats.ASes, stats.Blocks, stats.TotalCapacity)
	fmt.Fprintf(sf, "daily:  snapshots=%d totalIPs=%d avgIPs=%d total24s=%d totalASes=%d\n",
		daily.Snapshots, daily.TotalIPs, daily.AvgIPs, daily.TotalBlocks, daily.TotalASes)
	fmt.Fprintf(sf, "weekly: snapshots=%d totalIPs=%d avgIPs=%d total24s=%d totalASes=%d\n",
		weekly.Snapshots, weekly.TotalIPs, weekly.AvgIPs, weekly.TotalBlocks, weekly.TotalASes)
	sf.Close()

	log.Printf("wrote %s (%d allocations), %s (%d records), %s",
		nroPath, len(w.Registry.Allocations()), binPath, records, sumPath)
}
