// Command ipscope-gen generates a synthetic world and a year of
// activity. It is the production end of the observation pipeline:
//
//   - -dataset FILE streams the observation dataset to a file as the
//     simulation progresses ("-" streams to stdout, so the dataset can
//     be piped straight into ipscope-collect);
//   - -connect ADDR streams the dataset to a TCP collector or live
//     server (ipscope-collect -obs-listen ADDR, ipscope-serve
//     -obs-listen ADDR); -day-delay paces the stream so a live
//     consumer's epoch progression is observable in wall-clock time;
//   - without either flag it exports the legacy open-format files:
//     PREFIX.nro (NRO delegated-extended allocations), PREFIX.daily.bin
//     (per-(address, day) records in the cdnlog wire format) and
//     PREFIX.summary (Table 1 style).
//
// For a fixed seed and configuration the emitted dataset is
// byte-identical across runs and worker counts.
//
// Usage:
//
//	ipscope-gen [-seed N] [-ases N] [-blocks-per-as N] [-days N]
//	            [-dataset FILE|-] [-connect ADDR] [-prefix out/world]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"ipscope/internal/cdnlog"
	"ipscope/internal/ipv4"
	"ipscope/internal/obs"
	"ipscope/internal/registry"
	"ipscope/internal/sim"
	"ipscope/internal/synthnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ipscope-gen: ")

	// World/run defaults deliberately match ipscope-report's, so
	// "gen -dataset | ... | report -dataset" compares against a direct
	// "report" run without having to repeat every flag.
	seed := flag.Uint64("seed", 1, "world seed")
	ases := flag.Int("ases", 300, "number of autonomous systems")
	blocksPerAS := flag.Int("blocks-per-as", 12, "mean /24 blocks per AS")
	days := flag.Int("days", 364, "simulated days")
	dataset := flag.String("dataset", "", `stream the observation dataset to FILE ("-" = stdout)`)
	connect := flag.String("connect", "", "stream the observation dataset to a TCP collector at ADDR")
	dayDelay := flag.Duration("day-delay", 0, "pace the stream: sleep this long after each emitted day (live-pipeline demos)")
	prefix := flag.String("prefix", "ipscope-world", "output file prefix (legacy exports)")
	flag.Parse()

	wcfg := synthnet.Config{Seed: *seed, NumASes: *ases, MeanBlocksPerAS: *blocksPerAS}
	w := synthnet.Generate(wcfg)
	scfg := sim.DefaultConfig()
	scfg.Days = *days

	if *dataset != "" || *connect != "" {
		streamDataset(w, scfg, *dataset, *connect, *dayDelay)
		return
	}
	legacyExport(w, scfg, *seed, *prefix)
}

// streamDataset runs the simulation with obs.Writer sinks attached, so
// days and weeks hit the wire as they complete. A positive dayDelay
// throttles emission to roughly wall-clock-per-simulated-day, which
// makes a live consumer's epoch progression observable.
func streamDataset(w *synthnet.World, scfg sim.Config, dataset, connect string, dayDelay time.Duration) {
	var sinks []obs.Sink
	var writers []*obs.Writer
	var finish []func() error

	attach := func(dst io.Writer) {
		ow := obs.NewWriter(dst)
		sinks = append(sinks, ow)
		writers = append(writers, ow)
	}

	switch dataset {
	case "":
	case "-":
		attach(os.Stdout)
	default:
		f, err := os.Create(dataset)
		if err != nil {
			log.Fatal(err)
		}
		attach(f)
		finish = append(finish, f.Close)
	}
	if connect != "" {
		conn, err := net.Dial("tcp", connect)
		if err != nil {
			log.Fatal(err)
		}
		attach(conn)
		finish = append(finish, conn.Close)
	}
	// After the writers see each completed day, flush their buffers onto
	// the wire — a live consumer (serve -obs-listen / -follow) must see
	// frames as days close, not at bufio granularity — and sleep when
	// pacing is requested. Flush errors are ignored here: a writer that
	// failed (dead TCP peer) already carries its sticky error and has
	// been dropped from the event tee; flushing must go on for the
	// remaining healthy writers.
	sinks = append(sinks, obs.SinkFunc(func(e obs.Event) error {
		if _, ok := e.(obs.DayEvent); !ok {
			return nil
		}
		for _, ow := range writers {
			ow.Flush() //nolint:errcheck // sticky failure surfaces via the writer's own sink slot
		}
		if dayDelay > 0 {
			time.Sleep(dayDelay)
		}
		return nil
	}))

	res, err := sim.RunTo(w, scfg, sinks...)
	// Close every writer and underlying file/connection even when a sink
	// failed mid-run: one dead consumer (a reset TCP peer) must not cost
	// the healthy ones their end frame — the persisted -dataset copy has
	// to stay decodable. The first error still fails the process below.
	for _, ow := range writers {
		if cerr := ow.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	for _, fn := range finish {
		if ferr := fn(); ferr != nil && err == nil {
			err = ferr
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("streamed dataset: %d daily snapshots, %d weeks, %d traffic blocks",
		len(res.Daily), len(res.Weekly), len(res.Traffic))
}

// legacyExport writes the pre-pipeline open-format files.
func legacyExport(w *synthnet.World, scfg sim.Config, seed uint64, prefix string) {
	res := sim.Run(w, scfg)

	if dir := filepath.Dir(prefix); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	// NRO allocations.
	nroPath := prefix + ".nro"
	nf, err := os.Create(nroPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := registry.WriteNRO(nf, w.Registry.Allocations()); err != nil {
		log.Fatal(err)
	}
	nf.Close()

	// Daily activity stream.
	binPath := prefix + ".daily.bin"
	bf, err := os.Create(binPath)
	if err != nil {
		log.Fatal(err)
	}
	bw := bufio.NewWriterSize(bf, 1<<20)
	records := 0
	for day, set := range res.Daily {
		var batch []cdnlog.Record
		set.ForEach(func(a ipv4.Addr) {
			hits := uint32(1)
			if bt := res.Traffic[a.Block()]; bt != nil {
				da := bt.DaysActive[a.Host()]
				if da > 0 {
					hits = uint32(bt.Hits[a.Host()]/float64(da)) + 1
				}
			}
			batch = append(batch, cdnlog.Record{Addr: a, Day: uint32(day), Hits: hits})
		})
		if err := cdnlog.WriteFrame(bw, batch); err != nil {
			log.Fatal(err)
		}
		records += len(batch)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	bf.Close()

	// Summary.
	sumPath := prefix + ".summary"
	sf, err := os.Create(sumPath)
	if err != nil {
		log.Fatal(err)
	}
	daily := cdnlog.Summarize(res.Daily, w.ASOf)
	weekly := cdnlog.Summarize(res.Weekly, w.ASOf)
	stats := w.Summarize()
	fmt.Fprintf(sf, "seed=%d ases=%d blocks=%d capacity=%d\n",
		seed, stats.ASes, stats.Blocks, stats.TotalCapacity)
	fmt.Fprintf(sf, "daily:  snapshots=%d totalIPs=%d avgIPs=%d total24s=%d totalASes=%d\n",
		daily.Snapshots, daily.TotalIPs, daily.AvgIPs, daily.TotalBlocks, daily.TotalASes)
	fmt.Fprintf(sf, "weekly: snapshots=%d totalIPs=%d avgIPs=%d total24s=%d totalASes=%d\n",
		weekly.Snapshots, weekly.TotalIPs, weekly.AvgIPs, weekly.TotalBlocks, weekly.TotalASes)
	sf.Close()

	log.Printf("wrote %s (%d allocations), %s (%d records), %s",
		nroPath, len(w.Registry.Allocations()), binPath, records, sumPath)
}
