// Command ipscope-snapshot inspects and verifies persistent index
// snapshots (the files ipscope-serve -snapshot-save and -snapshot-dir
// produce).
//
//	ipscope-snapshot FILE            print the preface and section table
//	ipscope-snapshot -json FILE      the same, as machine-readable JSON
//	ipscope-snapshot -verify FILE    fully decode, re-encode and compare:
//	                                 a canonical file must be a byte-exact
//	                                 fixed point of decode∘encode
//	ipscope-snapshot -summary FILE   print the index summary as JSON
//	                                 (comparable to /v1/summary and
//	                                 ipscope-serve -dump-summary)
//
// Exit status is non-zero when the file does not decode or -verify
// finds a non-canonical encoding.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"ipscope/internal/query"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ipscope-snapshot: ")

	verify := flag.Bool("verify", false, "re-encode the decoded snapshot and require byte equality")
	summary := flag.Bool("summary", false, "print the index summary as JSON")
	asJSON := flag.Bool("json", false, "print the snapshot info as JSON")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: ipscope-snapshot [-verify] [-summary] [-json] FILE")
	}
	path := flag.Arg(0)

	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	l, err := query.DecodeSnapshot(data)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	if *verify {
		if re := l.Encode(); !bytes.Equal(re, data) {
			log.Fatalf("%s: decoded snapshot is not a canonical fixed point (%d bytes re-encoded vs %d on disk)",
				path, len(re), len(data))
		}
		fmt.Printf("verify OK: %s (%d bytes, epoch %d, %d blocks)\n",
			path, len(data), l.Info.Epoch, l.Info.Blocks)
	}
	switch {
	case *summary:
		if err := json.NewEncoder(os.Stdout).Encode(l.Index.Summary()); err != nil {
			log.Fatal(err)
		}
	case *asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(l.Info); err != nil {
			log.Fatal(err)
		}
	case !*verify:
		printInfo(path, len(data), l.Info)
	}
}

// printInfo renders the preface and section table the way the format
// doc in internal/query/snapshot.go lays the file out.
func printInfo(path string, size int, info query.SnapshotInfo) {
	fmt.Printf("%s: %d bytes\n", path, size)
	fmt.Printf("  epoch     %d\n", info.Epoch)
	fmt.Printf("  days      %d\n", info.Days)
	fmt.Printf("  words     %d (per-host day-bitset words)\n", info.Words)
	fmt.Printf("  blocks    %d\n", info.Blocks)
	fmt.Printf("  resumable %v\n", info.Resumable)
	if sh := info.Shard; sh != nil {
		fmt.Printf("  shard     %d/%d, block range [%d, %d)\n", sh.Index, sh.Count, sh.Lo, sh.Hi)
	}
	fmt.Printf("  %-3s %-10s %12s %12s\n", "id", "section", "offset", "length")
	for _, s := range info.Sections {
		fmt.Printf("  %-3d %-10s %12d %12d\n", s.ID, s.Name, s.Offset, s.Length)
	}
}
